"""The ``droidracer serve`` race-analysis service.

A long-running asyncio front end over the sharded trace corpus: device
sessions (or a fleet driver) POST execution traces, the service ingests
them into the content-addressed :class:`~repro.corpus.store.TraceStore`,
enqueues one analysis job per ``(trace_digest, config_digest)`` key in
the durable :class:`~repro.service.jobs.JobQueue`, fans jobs out to a
persistent ``ProcessPoolExecutor`` running the exact
:func:`repro.corpus.pipeline._analyze_one` worker the offline batch
pipeline uses, and serves job status plus :class:`RaceReport` JSON that
is byte-identical (modulo the volatile timing fields the regression
gate also ignores) to ``droidracer analyze --json``.

Endpoints (see ``docs/service.md`` for the full walkthrough)::

    GET  /healthz                 liveness
    GET  /v1/status               queue, pool, corpus, counters
    POST /v1/traces               upload one trace (JSONL body, optional
                                  gzip Content-Encoding); 202 + job
    POST /v1/traces:batch         upload many ({"traces": [...]})
    GET  /v1/jobs                 list jobs (?state=&namespace=&limit=)
    GET  /v1/jobs/<id>            one job
    GET  /v1/reports/<digest>     RaceReport JSON (?config=<digest>)
    GET  /v1/corpus               manifest rows (?namespace=)
    GET  /v1/stream               NDJSON (or SSE) of results as they
                                  complete (?after=<seq> replays)
    POST /v1/compact              fold store manifests
    GET  /metrics                 Prometheus text exposition (v0.0.4)
    GET  /v1/metrics.json         same registry as JSON + queue/pool

Durability and flow control live in :mod:`repro.service.jobs`; raw
HTTP plumbing in :mod:`repro.service.http`.  Every completed analysis
appends a :class:`~repro.obs.RunRecord` (command ``service.analyze``)
when a history dir is configured, so per-tenant observability and the
``droidracer obs gate`` regression machinery cover served traffic for
free; ``service.*`` counters and spans flow through :mod:`repro.obs`
whenever the current tracer is enabled.

Live telemetry is always on: every instance owns a
:class:`~repro.obs.metrics.MetricsRegistry` (request latency/status/
body-size histograms per normalized route, queue depth and oldest-job
age, job wait-vs-run histograms, triage filtered/escalated rates, pool
rebuilds, RSS) scraped at ``GET /metrics`` (Prometheus text v0.0.4) or
``GET /v1/metrics.json`` (what ``droidracer obs top`` polls), and a
span->histogram bridge turns every ``service.*`` span and merged worker
span into quantile data.  ``--log-json PATH|-`` adds the structured
JSON-lines event log (request ids propagated to job ids; see
:mod:`repro.obs.logging`).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import json
import os
import threading
import time
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.race_detector import DetectorConfig, RaceReport
from repro.core.trace import ExecutionTrace, InvalidTraceError
from repro.corpus import ResultCache, TraceStore, report_to_json, valid_digest
from repro.corpus.pipeline import _analyze_one
from repro.corpus.store import CorpusError, list_namespaces, valid_namespace
from repro.obs import NULL_LOGGER, JsonLogger, current_tracer
from repro.obs.metrics import (
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    SpanHistogramSink,
    render_prometheus,
    rss_bytes,
)
from repro.obs.tracer import Tracer

from .http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    Request,
    Response,
    json_response,
    read_request,
    start_stream,
    write_response,
)
from .jobs import JOB_DONE, Job, JobQueue, QueueFullError

__all__ = ["BackgroundServer", "RaceService", "SERVICE_DIR"]

#: Service state (job journal) lives under ``<store_root>/service/``.
SERVICE_DIR = "service"

#: Sentinel a route handler returns after taking over the transport.
_STREAMED = object()

#: Exact paths that label themselves in request metrics.
_KNOWN_ROUTES = frozenset(
    {
        "/",
        "/healthz",
        "/metrics",
        "/v1/status",
        "/v1/metrics.json",
        "/v1/traces",
        "/v1/traces:batch",
        "/v1/jobs",
        "/v1/corpus",
        "/v1/stream",
        "/v1/compact",
    }
)


def _route_label(path: str) -> str:
    """Metric label for a request path, with bounded cardinality:
    parameterized paths collapse to their pattern and everything
    unrecognized (scanners, typos) to ``"other"`` so an abusive client
    cannot mint unbounded label values."""
    if path in _KNOWN_ROUTES:
        return path
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/:id"
    if path.startswith("/v1/reports/"):
        return "/v1/reports/:digest"
    return "other"


class RaceService:
    """One service instance: corpus + cache + queue + pool + HTTP."""

    def __init__(
        self,
        store_root: Union[str, "os.PathLike[str]"],
        config: Optional[DetectorConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
        queue_depth: int = 256,
        max_attempts: int = 3,
        timeout: Optional[float] = None,
        history_dir: Optional[str] = None,
        drain: bool = True,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        log_json: Optional[str] = None,
        status_ttl: float = 2.0,
    ):
        self.store_root = str(store_root)
        self.config = config or DetectorConfig()
        self.config_digest = self.config.digest()
        self.host = host
        self.port = port
        #: ``jobs > 0``: a persistent process pool of that many workers.
        #: ``jobs <= 0``: run analysis inline on the event loop's thread
        #: pool (no child processes — fast startup for tests).
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.timeout = timeout
        self.drain = drain
        self.max_body_bytes = max_body_bytes

        self.root_store = TraceStore(self.store_root)
        self._stores: Dict[Optional[str], TraceStore] = {None: self.root_store}
        self.cache = ResultCache(self.store_root)
        self.queue = JobQueue(
            os.path.join(self.store_root, SERVICE_DIR, "jobs.jsonl"),
            max_depth=queue_depth,
            max_attempts=max_attempts,
        )
        self.history = None
        if history_dir:
            from repro.obs import HistoryStore

            self.history = HistoryStore(history_dir)

        #: Live telemetry is always on for a service instance: the
        #: registry is per-service (not the process global — several
        #: BackgroundServers can share one test process), and when no
        #: external tracer is active a private one is created whose only
        #: sink is the span->histogram bridge, so every ``service.*``
        #: span and merged worker span becomes quantile data without
        #: retaining records.  Served reports stay byte-identical: the
        #: tracer/registry never touch report content (differentially
        #: pinned by tools/service_smoke.py).
        self.metrics = MetricsRegistry()
        self.tracer = current_tracer()
        if not self.tracer.enabled:
            self.tracer = Tracer(sinks=[SpanHistogramSink(self.metrics)])
        else:
            self.tracer.sinks.append(SpanHistogramSink(self.metrics))
        self.log = JsonLogger(log_json, tracer=self.tracer) if log_json else NULL_LOGGER
        self.status_ttl = status_ttl
        self._status_lock = threading.Lock()
        self._corpus_cache: Optional[Tuple[float, Dict[str, dict]]] = None
        self._next_request_id = 0
        self.counters: Dict[str, float] = {}
        self.started_at = time.time()
        self.pool_restarts = 0
        self._executor: Optional[concurrent.futures.Executor] = None
        #: Incremented each time a fresh pool is built; a failing job
        #: may only tear down the pool generation it actually ran on.
        self._executor_gen = 0
        self._inflight = 0
        self._max_inflight = self.jobs if self.jobs > 0 else 1
        self._published_seq = 0
        self._subscribers: Set[asyncio.Queue] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopping: Optional[asyncio.Event] = None
        self._running = False
        self._init_metrics()

    def _init_metrics(self) -> None:
        """Register the service's metric families up front.

        Counters that a scrape must always see (the smoke gate asserts
        the triage-rate series exist even on an idle server) are
        pre-created at zero; gauges that mirror live state are
        function-backed so they resolve at scrape time instead of
        needing a refresh hook on every code path that changes them.
        """
        metrics = self.metrics
        self._m_req_seconds = metrics.histogram(
            "droidracer_http_request_seconds",
            "wall time per HTTP request",
            ("method", "route"),
        )
        self._m_req_total = metrics.counter(
            "droidracer_http_requests_total",
            "HTTP requests by route and status code",
            ("method", "route", "code"),
        )
        self._m_req_body = metrics.histogram(
            "droidracer_http_request_body_bytes",
            "request body size on ingest routes",
            ("route",),
        )
        self._m_job_wait = metrics.histogram(
            "droidracer_job_wait_seconds",
            "queue wait: submit to worker claim",
        )
        self._m_job_run = metrics.histogram(
            "droidracer_job_run_seconds",
            "analysis wall time per completed job",
        )
        # ``service.*`` counters that must be present-at-zero on scrape.
        for name in (
            "requests",
            "traces_ingested",
            "jobs_submitted",
            "jobs_completed",
            "jobs_failed",
            "jobs_deduplicated",
            "job_timeouts",
            "retries",
            "rejected_429",
            "cache_short_circuits",
            "pool_restarts",
            "internal_errors",
            "races_found",
            "triage_filtered",
            "triage_escalated",
        ):
            metrics.counter(
                "droidracer_service_%s_total" % name,
                "service event counter service.%s" % name,
            )
        metrics.gauge(
            "droidracer_queue_depth", "analysis jobs queued, not yet running"
        ).set_function(lambda: self.queue.counts()["depth"])
        metrics.gauge(
            "droidracer_queue_oldest_age_seconds",
            "seconds the oldest queued job has waited",
        ).set_function(self.queue.oldest_queued_age)
        metrics.gauge(
            "droidracer_pool_inflight", "jobs currently executing"
        ).set_function(lambda: self._inflight)
        metrics.gauge(
            "droidracer_pool_workers", "worker slots (pool size)"
        ).set_function(lambda: self._max_inflight)
        metrics.gauge(
            "droidracer_uptime_seconds", "seconds since service start"
        ).set_function(lambda: time.time() - self.started_at)
        metrics.gauge(
            "droidracer_rss_bytes", "resident set size of the server process"
        ).set_function(rss_bytes)
        metrics.gauge(
            "droidracer_status_corpus_age_seconds",
            "age of the cached /v1/status corpus payload",
        ).set_function(self._corpus_cache_age)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, recover journaled jobs, start the scheduler."""
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        self._running = True
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.create_task(self._scheduler())
        self._publish_events(initial=True)
        self._wake.set()
        self.log.log(
            "service.start",
            host=self.host,
            port=self.port,
            workers=self._max_inflight,
            backend=self.config.backend,
            config_digest=self.config_digest,
            recovered=self.queue.recovered,
        )

    def _recover(self) -> None:
        """Finish journal recovery: queued keys whose report is already
        in the result cache complete instantly instead of re-analyzing
        (the restart guarantee — completed work is never redone)."""
        for job in self.queue.jobs(state="queued"):
            report = self.cache.get(job.trace_digest, job.config_digest)
            if report is not None:
                self.queue.complete(
                    job.job_id, cached=True, race_count=len(report.races)
                )
                self._count("service.recovered_from_cache")
        if self.queue.recovered:
            self._count("service.jobs_recovered", self.queue.recovered)

    async def serve_forever(self) -> None:
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        self._running = False
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._scheduler_task is not None:
            self._wake.set()
            try:
                await asyncio.wait_for(self._scheduler_task, timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._scheduler_task.cancel()
        # Let open connection handlers exit on their own (cancelling
        # them mid-read makes asyncio's stream protocol log noise):
        # wake stream subscribers, close transports, then wait.
        for sub in list(self._subscribers):
            sub.put_nowait(None)
        for conn_writer in list(self._connections):
            try:
                conn_writer.close()
            except OSError:
                pass
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.queue.close()
        self.log.log(
            "service.stop",
            uptime_seconds=round(time.time() - self.started_at, 3),
        )
        self.log.close()

    def request_stop(self) -> None:
        """Signal ``serve_forever`` to exit (safe from signal handlers)."""
        if self._stopping is not None:
            self._stopping.set()

    # -- worker pool ---------------------------------------------------------

    def _ensure_executor(
        self,
    ) -> Tuple[Optional[concurrent.futures.Executor], int]:
        """The current pool and its generation number.

        Inline mode (``jobs <= 0``) uses the event loop's default
        thread pool and never rebuilds.
        """
        if self.jobs <= 0:
            return None, self._executor_gen
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )
            self._executor_gen += 1
        return self._executor, self._executor_gen

    def _rebuild_executor(self, generation: int) -> None:
        """Tear down the broken pool — but only if ``generation`` is
        still the live one.  When several inflight jobs fail against the
        same broken pool, the first failure rebuilds it; the stragglers
        must not shut down (and cancel jobs on) the healthy replacement.
        """
        if generation != self._executor_gen:
            return  # a sibling failure already replaced this pool
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.pool_restarts += 1
        self._count("service.pool_restarts")
        self.log.warn("pool.rebuild", restarts=self.pool_restarts)

    # -- scheduling ----------------------------------------------------------

    async def _scheduler(self) -> None:
        while self._running:
            self._wake.clear()
            if self.drain:
                while self._inflight < self._max_inflight:
                    job = self.queue.next_job()
                    if job is None:
                        break
                    self._inflight += 1
                    asyncio.create_task(self._run_job(job))
            await self._wake.wait()

    @property
    def collect_obs(self) -> bool:
        return self.history is not None or self.tracer.enabled

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        store = self._store(job.namespace)
        if job.started_at and job.submitted_at:
            self._m_job_wait.observe(max(0.0, job.started_at - job.submitted_at))
        job_log = self.log.bind(
            job_id=job.job_id,
            request_id=job.request_id,
            trace_digest=job.trace_digest,
            config_digest=job.config_digest,
        )
        job_log.log("job.start", attempt=job.attempts, namespace=job.namespace)
        args = (
            job.trace_digest,
            str(store.path_for(job.trace_digest)),
            job.trace_name,
            self.config,
            self.collect_obs,
            self.timeout,
        )
        try:
            try:
                executor, generation = self._ensure_executor()
                result = await loop.run_in_executor(
                    executor, _analyze_one, args
                )
            except concurrent.futures.BrokenExecutor as exc:
                # A worker process died mid-job (OOM-killer, SIGKILL).
                # The pool is unusable: rebuild it (generation-guarded —
                # a sibling failure may already have) and retry the job
                # until its attempt budget runs out.
                self._rebuild_executor(generation)
                retried = self.queue.fail(
                    job.job_id, "worker pool broke: %s" % exc, retry=True
                )
                self._count(
                    "service.retries" if retried else "service.jobs_failed"
                )
                job_log.warn(
                    "job.retry" if retried else "job.failed",
                    error="worker pool broke: %s" % exc,
                )
                return
            except asyncio.CancelledError:
                # Our future was cancelled out from under us — a pool
                # rebuild's cancel_futures, or server shutdown.  The
                # job did nothing wrong: re-queue it (journaled, so a
                # restart resumes it) instead of stranding it in
                # ``running`` forever.
                retried = self.queue.fail(
                    job.job_id, "analysis cancelled (pool shutdown)", retry=True
                )
                self._count(
                    "service.retries" if retried else "service.jobs_failed"
                )
                job_log.warn(
                    "job.retry" if retried else "job.failed",
                    error="analysis cancelled (pool shutdown)",
                )
                return
            except Exception as exc:  # noqa: BLE001 — keep the loop alive
                error = "%s: %s" % (exc.__class__.__name__, exc)
                self.queue.fail(job.job_id, error)
                self._count("service.jobs_failed")
                job_log.error("job.failed", error=error)
                return
            digest, report_dict, error, seconds, obs, triage = result
            if obs and self.tracer.enabled:
                self.tracer.merge(obs)
            verdict = triage.get("verdict") if triage else None
            if report_dict is not None:
                report = RaceReport.from_dict(report_dict)
                self.cache.put(digest, self.config_digest, report)
                self.queue.complete(
                    job.job_id,
                    seconds=seconds,
                    race_count=len(report.races),
                    triage=verdict,
                )
                self._count("service.jobs_completed")
                self._count("service.races_found", len(report.races))
                if verdict == "escalated":
                    self._count("service.triage_escalated")
                self._m_job_run.observe(seconds)
                job_log.log(
                    "job.done",
                    seconds=round(seconds, 6),
                    races=len(report.races),
                    triage=verdict,
                )
                self._record_history(job, report_dict, obs, seconds, triage)
            elif verdict == "filtered":
                # The vc triage pass proved the trace race-free: the job
                # completes with zero races and no stored report (filtered
                # verdicts are never cached — the cache key excludes the
                # triage knob).
                self.queue.complete(
                    job.job_id, seconds=seconds, race_count=0, triage=verdict
                )
                self._count("service.jobs_completed")
                self._count("service.triage_filtered")
                self._m_job_run.observe(seconds)
                job_log.log(
                    "job.done", seconds=round(seconds, 6), races=0,
                    triage=verdict,
                )
            else:
                self.queue.fail(job.job_id, error or "analysis failed")
                self._count("service.jobs_failed")
                if error and error.startswith("AnalysisTimeout"):
                    self._count("service.job_timeouts")
                job_log.error("job.failed", error=error or "analysis failed")
        finally:
            self._inflight -= 1
            self._publish_events()
            self._wake.set()

    # -- history / observability ----------------------------------------------

    def _count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        self.tracer.count(name, value)
        # Mirror into the Prometheus registry: "service.foo" becomes
        # "droidracer_service_foo_total" (get-or-create, so counters
        # beyond the pre-registered set still export).
        self.metrics.counter(
            "droidracer_service_%s_total" % name.split(".", 1)[-1],
            "service event counter %s" % name,
        ).inc(value)

    def _record_history(
        self,
        job: Job,
        report_dict: dict,
        obs: Optional[dict],
        seconds: float,
        triage: Optional[dict] = None,
    ) -> None:
        if self.history is None:
            return
        from repro.core.happens_before import SAT_INCREMENTAL
        from repro.core.race_detector import ENUM_BATCHED
        from repro.obs import RunRecord, aggregate_spans, report_digest
        from repro.obs.tracer import SpanRecord

        rows: List[dict] = []
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        if obs:
            rows = aggregate_spans(
                [SpanRecord.from_dict(d) for d in obs.get("spans", ())]
            )
            counters = dict(obs.get("counters", {}))
            gauges = dict(obs.get("gauges", {}))
        closure = dict(report_dict.get("closure") or {})
        closure["nodes"] = report_dict["node_count"]
        closure["reduction_ratio"] = report_dict["reduction_ratio"]
        per_category: Dict[str, int] = {}
        for race in report_dict.get("races", ()):
            category = race.get("category", "?")
            per_category[category] = per_category.get(category, 0) + 1
        record = RunRecord(
            command="service.analyze",
            trace_digest=job.trace_digest,
            config_digest=job.config_digest,
            app=job.app,
            trace_name=job.trace_name,
            trace_count=1,
            trace_length=report_dict["trace_length"],
            backend=self.config.backend,
            saturation=SAT_INCREMENTAL,
            enumeration=ENUM_BATCHED,
            coalesce=self.config.coalesce,
            closure=closure,
            report_digest=report_digest(report_dict),
            race_count=len(report_dict["races"]),
            racy_pairs=report_dict["racy_pair_count"],
            per_category=per_category,
            spans=rows,
            counters=counters,
            gauges=gauges,
        )
        extra = {
            "namespace": job.namespace,
            "job_id": job.job_id,
            "seconds": seconds,
        }
        if triage:
            extra["triage"] = triage
        record.extra = extra
        self.history.append(record)

    # -- stream fan-out -------------------------------------------------------

    def _publish_events(self, initial: bool = False) -> None:
        events = self.queue.events_since(self._published_seq)
        if events:
            self._published_seq = events[-1]["seq"]
        if initial:
            return  # recovery events are replayable, not live-pushed
        for event in events:
            for sub in self._subscribers:
                sub.put_nowait(event)

    # -- stores ---------------------------------------------------------------

    def _store(self, namespace: Optional[str]) -> TraceStore:
        if namespace is not None and not valid_namespace(namespace):
            raise HttpError(400, "invalid namespace %r" % namespace)
        store = self._stores.get(namespace)
        if store is None:
            store = self.root_store.namespace_store(namespace)
            self._stores[namespace] = store
        return store

    def _namespace_of(self, request: Request) -> Optional[str]:
        namespace = request.param("namespace")
        return namespace or None

    # -- HTTP ----------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(writer)
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader, self.max_body_bytes)
                except HttpError as exc:
                    await write_response(
                        writer, json_response(exc.payload, exc.status), False
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                self._count("service.requests")
                self._next_request_id += 1
                request.req_id = "req-%06d" % self._next_request_id
                route = _route_label(request.path)
                t0 = time.perf_counter()
                outcome = await self._safe_route(request, writer)
                seconds = time.perf_counter() - t0
                status = 200 if outcome is _STREAMED else outcome.status
                self._m_req_seconds.labels(
                    method=request.method, route=route
                ).observe(seconds)
                self._m_req_total.labels(
                    method=request.method, route=route, code=str(status)
                ).inc()
                if request.body:
                    self._m_req_body.labels(route=route).observe(
                        len(request.body)
                    )
                self.log.log(
                    "request.done",
                    request_id=request.req_id,
                    method=request.method,
                    path=request.path,
                    route=route,
                    status=status,
                    seconds=round(seconds, 6),
                    bytes_in=len(request.body),
                )
                if outcome is _STREAMED:
                    break
                self._count("service.responses_%dxx" % (outcome.status // 100))
                try:
                    await write_response(writer, outcome, request.keep_alive)
                except ConnectionError:
                    break
                if not request.keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _safe_route(self, request: Request, writer):
        with self.tracer.span(
            "service.request", method=request.method, path=request.path
        ) as span:
            try:
                return await self._route(request, writer)
            except HttpError as exc:
                span.set(status=exc.status)
                return json_response(exc.payload, exc.status)
            except QueueFullError as exc:
                self._count("service.rejected_429")
                span.set(status=429)
                response = json_response({"error": str(exc)}, 429)
                response.headers["Retry-After"] = "1"
                return response
            except (CorpusError, InvalidTraceError) as exc:
                span.set(status=400)
                return json_response({"error": str(exc)}, 400)
            except Exception as exc:  # noqa: BLE001 — server must survive
                self._count("service.internal_errors")
                span.set(status=500, error=str(exc))
                return json_response(
                    {"error": "%s: %s" % (exc.__class__.__name__, exc)}, 500
                )

    async def _route(self, request: Request, writer):
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return json_response({"ok": True})
        if path == "/" and method == "GET":
            return json_response(self._index())
        if path == "/v1/status" and method == "GET":
            # The shard-directory scan is disk work — off the loop.
            status = await asyncio.get_running_loop().run_in_executor(
                None, self.status
            )
            return json_response(status)
        if path == "/v1/traces" and method == "POST":
            return await self._handle_upload(request)
        if path == "/v1/traces:batch" and method == "POST":
            return await self._handle_batch(request)
        if path == "/v1/jobs" and method == "GET":
            return self._handle_jobs(request)
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._handle_job(path[len("/v1/jobs/"):])
        if path.startswith("/v1/reports/") and method == "GET":
            return await self._handle_report(request, path[len("/v1/reports/"):])
        if path == "/v1/corpus" and method == "GET":
            return await self._handle_corpus(request)
        if path == "/v1/stream" and method == "GET":
            await self._handle_stream(request, writer)
            return _STREAMED
        if path == "/v1/compact" and method == "POST":
            return await self._handle_compact()
        if path == "/metrics" and method == "GET":
            return Response(
                status=200,
                body=render_prometheus(self.metrics).encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if path == "/v1/metrics.json" and method == "GET":
            return json_response(self.metrics_json())
        known = {
            "/healthz", "/", "/v1/status", "/v1/traces", "/v1/traces:batch",
            "/v1/jobs", "/v1/corpus", "/v1/stream", "/v1/compact",
            "/metrics", "/v1/metrics.json",
        }
        if path in known or path.startswith(("/v1/jobs/", "/v1/reports/")):
            raise HttpError(405, "%s not allowed on %s" % (method, path))
        raise HttpError(404, "unknown endpoint %s" % path)

    def _index(self) -> dict:
        return {
            "service": "droidracer",
            "endpoints": [
                "GET /healthz",
                "GET /v1/status",
                "POST /v1/traces",
                "POST /v1/traces:batch",
                "GET /v1/jobs",
                "GET /v1/jobs/<job_id>",
                "GET /v1/reports/<trace_digest>",
                "GET /v1/corpus",
                "GET /v1/stream",
                "POST /v1/compact",
                "GET /metrics",
                "GET /v1/metrics.json",
            ],
            "config_digest": self.config_digest,
            "backend": self.config.backend,
        }

    def _corpus_stats(self) -> Tuple[Dict[str, dict], float]:
        """Per-namespace corpus stats behind a short TTL.

        The shard-directory scan walks every namespace on disk; a
        polling client (``obs top`` defaults to 2s) must not turn each
        poll into a full store walk.  Queue/pool/counter fields stay
        live — only this payload is cached.  Ingest invalidates the
        cache (see :meth:`_ingest_and_submit`), so a just-uploaded
        trace is always visible in the next ``/v1/status``.
        Returns ``(stats, age_seconds)``.
        """
        now = time.time()
        with self._status_lock:
            if (
                self._corpus_cache is not None
                and now - self._corpus_cache[0] < self.status_ttl
            ):
                built_at, corpus = self._corpus_cache
                return corpus, now - built_at
        corpus: Dict[str, dict] = {"default": self.root_store.stats()}
        for namespace in list_namespaces(self.store_root):
            corpus[namespace] = self._store(namespace).stats()
        with self._status_lock:
            self._corpus_cache = (now, corpus)
        return corpus, 0.0

    def _corpus_cache_age(self) -> float:
        """Age of the cached corpus payload (0.0 when empty/fresh) —
        exported as ``droidracer_status_corpus_age_seconds``."""
        with self._status_lock:
            if self._corpus_cache is None:
                return 0.0
            return max(0.0, time.time() - self._corpus_cache[0])

    def _invalidate_corpus_cache(self) -> None:
        with self._status_lock:
            self._corpus_cache = None

    def status(self) -> dict:
        corpus, corpus_age = self._corpus_stats()
        return {
            "ok": True,
            "uptime_seconds": time.time() - self.started_at,
            "corpus_age_seconds": round(corpus_age, 3),
            "queue": self.queue.counts(),
            "pool": {
                "mode": "process" if self.jobs > 0 else "inline",
                "workers": self._max_inflight,
                "inflight": self._inflight,
                "restarts": self.pool_restarts,
                "draining": self.drain,
            },
            "corpus": corpus,
            "cache": {"hits": self.cache.hits, "misses": self.cache.misses},
            "counters": dict(sorted(self.counters.items())),
            "config_digest": self.config_digest,
            "backend": self.config.backend,
            "timeout": self.timeout,
        }

    def metrics_json(self) -> dict:
        """The ``/v1/metrics.json`` document ``obs top`` polls: the
        full registry (histogram children carry p50/p95/p99, histogram
        families a cross-label aggregate) plus the live queue/pool
        block so one poll renders the whole screen."""
        return {
            "ok": True,
            "uptime_seconds": time.time() - self.started_at,
            "queue": self.queue.counts(),
            "pool": {
                "mode": "process" if self.jobs > 0 else "inline",
                "workers": self._max_inflight,
                "inflight": self._inflight,
                "restarts": self.pool_restarts,
            },
            "counters": dict(sorted(self.counters.items())),
            **self.metrics.to_json_dict(),
        }

    # -- upload & jobs --------------------------------------------------------

    def _parse_trace(
        self, text: str, name: Optional[str]
    ) -> ExecutionTrace:
        try:
            trace = ExecutionTrace.from_jsonl(text, name=name or "upload")
        except InvalidTraceError as exc:
            raise HttpError(400, "malformed trace: %s" % exc)
        if not len(trace):
            raise HttpError(400, "empty trace upload")
        if name is None:
            trace.name = "upload-%s" % trace.canonical_digest()[:12]
        return trace

    def _parse_and_ingest(
        self,
        store: TraceStore,
        text: str,
        name: Optional[str],
        app: Optional[str],
    ):
        """Parse + persist one upload (blocking; runs on a worker thread
        so multi-MB bodies never stall the event loop)."""
        trace = self._parse_trace(text, name)
        return store.ingest(trace, app=app, name=name)[0]

    async def _ingest_and_submit(
        self,
        text: str,
        name: Optional[str],
        app: Optional[str],
        namespace: Optional[str],
        analyze: bool,
        request_id: str = "",
    ) -> dict:
        loop = asyncio.get_running_loop()
        store = self._store(namespace)
        entry = await loop.run_in_executor(
            None, self._parse_and_ingest, store, text, name, app
        )
        self._count("service.traces_ingested")
        self._invalidate_corpus_cache()
        payload = {
            "trace_digest": entry.digest,
            "entry": {
                "name": entry.name,
                "app": entry.app,
                "length": entry.length,
            },
            "namespace": namespace,
        }
        if not analyze:
            payload["job"] = None
            return payload
        # Cache probe (disk read) and submit (journal fsync) are also
        # blocking; the queue is thread-safe, so only the wake/publish
        # bookkeeping below must stay on the loop.
        cached_report = await loop.run_in_executor(
            None, self.cache.get, entry.digest, self.config_digest
        )
        job, created = await loop.run_in_executor(
            None,
            functools.partial(
                self.queue.submit,
                entry.digest,
                self.config_digest,
                trace_name=entry.name,
                app=entry.app,
                namespace=namespace,
                cached=cached_report is not None,
                request_id=request_id,
            ),
        )
        if created:
            self._count("service.jobs_submitted")
            self.log.log(
                "job.submitted",
                request_id=request_id,
                job_id=job.job_id,
                trace_digest=entry.digest,
                config_digest=self.config_digest,
                namespace=namespace,
                cached=job.state == JOB_DONE,
            )
            if job.state == JOB_DONE:
                self._count("service.cache_short_circuits")
                self._publish_events()
            else:
                self._wake.set()
        else:
            self._count("service.jobs_deduplicated")
        payload["job"] = self._job_dict(job)
        return payload

    @staticmethod
    def _wants_analysis(request: Request) -> bool:
        return request.param("analyze", "1") not in ("0", "false", "no")

    async def _handle_upload(self, request: Request) -> Response:
        namespace = self._namespace_of(request)
        loop = asyncio.get_running_loop()
        text = await loop.run_in_executor(None, request.text)
        payload = await self._ingest_and_submit(
            text,
            request.param("name"),
            request.param("app"),
            namespace,
            self._wants_analysis(request),
            request_id=request.req_id,
        )
        status = 202 if payload.get("job") else 200
        return json_response(payload, status)

    async def _handle_batch(self, request: Request) -> Response:
        namespace = self._namespace_of(request)
        analyze = self._wants_analysis(request)
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, request.json)
        if not isinstance(body, dict) or not isinstance(
            body.get("traces"), list
        ):
            raise HttpError(400, 'batch body must be {"traces": [...]}')
        items: List[dict] = []
        accepted = 0
        for i, item in enumerate(body["traces"]):
            if not isinstance(item, dict) or "jsonl" not in item:
                items.append(
                    {"index": i, "status": 400, "error": "item needs a 'jsonl' field"}
                )
                continue
            try:
                payload = await self._ingest_and_submit(
                    item["jsonl"],
                    item.get("name"),
                    item.get("app"),
                    item.get("namespace", namespace),
                    analyze,
                    request_id=request.req_id,
                )
            except HttpError as exc:
                items.append(dict(exc.payload, index=i, status=exc.status))
                continue
            except QueueFullError as exc:
                self._count("service.rejected_429")
                items.append({"index": i, "status": 429, "error": str(exc)})
                continue
            items.append(dict(payload, index=i, status=202 if analyze else 200))
            accepted += 1
        status = 202 if accepted else 400
        return json_response(
            {"accepted": accepted, "total": len(body["traces"]), "items": items},
            status,
        )

    def _job_dict(self, job: Job) -> dict:
        payload = job.to_dict()
        # A triage-filtered job has no stored report (the vc verdict is
        # never cached), so there is no report path to offer.
        if job.state == JOB_DONE and job.triage != "filtered":
            report_path = "/v1/reports/%s?config=%s" % (
                job.trace_digest,
                job.config_digest,
            )
            if job.namespace:
                report_path += "&namespace=%s" % job.namespace
            payload["report_path"] = report_path
        return payload

    def _handle_jobs(self, request: Request) -> Response:
        limit_raw = request.param("limit", "0")
        try:
            limit = int(limit_raw)
        except ValueError:
            raise HttpError(400, "invalid limit %r" % limit_raw)
        jobs = self.queue.jobs(
            state=request.param("state"),
            namespace=request.param("namespace"),
            limit=limit,
        )
        return json_response(
            {"jobs": [self._job_dict(job) for job in jobs], "counts": self.queue.counts()}
        )

    def _handle_job(self, job_id: str) -> Response:
        job = self.queue.get(job_id)
        if job is None:
            raise HttpError(404, "unknown job %s" % job_id)
        return json_response(self._job_dict(job))

    async def _handle_report(self, request: Request, digest: str) -> Response:
        # The digest and config come straight off the URL: reject
        # anything that is not a hex content digest *before* they reach
        # a filesystem join (the cache also re-checks — defense in
        # depth against path traversal).
        if not valid_digest(digest):
            raise HttpError(400, "invalid trace digest %r" % digest[:80])
        config_digest = request.param("config") or self.config_digest
        if not valid_digest(config_digest):
            raise HttpError(400, "invalid config digest %r" % config_digest[:80])
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, self.cache.get, digest, config_digest
        )
        if report is None:
            job = self.queue.find(
                digest, config_digest, self._namespace_of(request)
            )
            raise HttpError(
                404,
                "no report for trace %s under config %s"
                % (digest[:12], config_digest[:12]),
                job_state=job.state if job else None,
            )
        # Byte-for-byte the offline CLI's ``analyze --json`` output
        # (stdout print appends the trailing newline there; we do here).
        body = (report_to_json(report) + "\n").encode("utf-8")
        return Response(status=200, body=body)

    async def _handle_corpus(self, request: Request) -> Response:
        store = self._store(self._namespace_of(request))
        loop = asyncio.get_running_loop()
        return json_response(
            await loop.run_in_executor(None, self._corpus_payload, store)
        )

    @staticmethod
    def _corpus_payload(store: TraceStore) -> dict:
        store.refresh()
        return {
            "stats": store.stats(),
            "entries": [
                {
                    "digest": e.digest,
                    "name": e.name,
                    "app": e.app,
                    "length": e.length,
                    "threads": e.threads,
                    "tasks": e.tasks,
                }
                for e in store.entries()
            ],
        }

    async def _handle_compact(self) -> Response:
        loop = asyncio.get_running_loop()
        totals = await loop.run_in_executor(None, self._compact_all)
        return json_response({"compacted": totals})

    def _compact_all(self) -> Dict[str, int]:
        totals = {"default": self.root_store.compact()}
        for namespace in list_namespaces(self.store_root):
            totals[namespace] = self._store(namespace).compact()
        return totals

    async def _handle_stream(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        after_raw = request.param("after", "0")
        try:
            after = int(after_raw)
        except ValueError:
            raise HttpError(400, "invalid after %r" % after_raw)
        sse = "text/event-stream" in request.headers.get("accept", "")
        await start_stream(
            writer,
            "text/event-stream" if sse else "application/x-ndjson",
        )
        self._count("service.stream_connections")
        sub: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(sub)
        sent = after
        try:
            for event in self.queue.events_since(after):
                self._write_event(writer, event, sse)
                sent = event["seq"]
            await writer.drain()
            while True:
                event = await sub.get()
                if event is None:
                    break  # server shutdown
                if event["seq"] <= sent:
                    continue  # already replayed
                self._write_event(writer, event, sse)
                sent = event["seq"]
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away
        finally:
            self._subscribers.discard(sub)

    @staticmethod
    def _write_event(
        writer: asyncio.StreamWriter, event: dict, sse: bool
    ) -> None:
        blob = json.dumps(event, sort_keys=True)
        if sse:
            writer.write(("data: %s\n\n" % blob).encode("utf-8"))
        else:
            writer.write((blob + "\n").encode("utf-8"))


class BackgroundServer:
    """Run a :class:`RaceService` on a daemon thread with its own event
    loop — the in-process harness tests, benchmarks, and ``serve
    --self-test`` drive through a real socket.

    Usable as a context manager::

        with BackgroundServer(store_root=tmp, jobs=0) as server:
            client = ServiceClient(server.base_url)
    """

    def __init__(self, **service_kwargs):
        self._kwargs = service_kwargs
        self.service: Optional[RaceService] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return "http://%s:%d" % (
            self._kwargs.get("host", "127.0.0.1"),
            self.port,
        )

    def start(self, timeout: float = 30.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="droidracer-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service did not start within %.1fs" % timeout)
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start: %s" % self._startup_error
            ) from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced to starter
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _amain(self) -> None:
        try:
            self.service = RaceService(**self._kwargs)
            await self.service.start()
        except BaseException as exc:  # noqa: BLE001
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self.port = self.service.port
        self._ready.set()
        await self.service.serve_forever()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.service is not None:
            self._loop.call_soon_threadsafe(self.service.request_stop)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
