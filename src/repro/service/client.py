"""Blocking client for the ``droidracer serve`` HTTP API.

Stdlib-only (``http.client``), synchronous, and deliberately thin: the
test-suite, the CI smoke driver, ``serve --self-test``, and the service
benchmark all drive the server through this — over a real socket, the
same way a fleet driver would.  Each call opens/uses one keep-alive
connection; the client is not thread-safe (give each thread its own).
"""

from __future__ import annotations

import gzip
import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response (or a timed-out wait)."""

    def __init__(self, status: int, payload):
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to one running service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        split = urlsplit(base_url)
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One request; returns ``(status, raw_body)``.  Retries once on
        a dropped keep-alive connection."""
        if params:
            path = "%s?%s" % (path, urlencode(params))
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
                data = response.read()
                return response.status, data
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def request_json(self, method: str, path: str, **kwargs):
        status, data = self.request(method, path, **kwargs)
        try:
            payload = json.loads(data.decode("utf-8"))
        except ValueError:
            payload = data.decode("utf-8", "replace")
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self.request_json("GET", "/healthz")

    def status(self) -> dict:
        return self.request_json("GET", "/v1/status")

    def metrics_json(self) -> dict:
        """The ``/v1/metrics.json`` document (what ``obs top`` polls)."""
        return self.request_json("GET", "/v1/metrics.json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition from ``GET /metrics``."""
        status, data = self.request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def upload(
        self,
        jsonl: str,
        name: Optional[str] = None,
        app: Optional[str] = None,
        namespace: Optional[str] = None,
        analyze: bool = True,
        compress: bool = False,
    ) -> dict:
        """Upload one trace (canonical JSONL text); returns the ingest
        payload (``trace_digest`` + ``job``).  ``compress=True`` gzips
        the body and sets ``Content-Encoding: gzip``."""
        params = {}
        if name:
            params["name"] = name
        if app:
            params["app"] = app
        if namespace:
            params["namespace"] = namespace
        if not analyze:
            params["analyze"] = "0"
        body = jsonl.encode("utf-8")
        headers = {"Content-Type": "application/x-ndjson"}
        if compress:
            body = gzip.compress(body)
            headers["Content-Encoding"] = "gzip"
        return self.request_json(
            "POST", "/v1/traces", params=params, body=body, headers=headers
        )

    def upload_batch(
        self,
        traces: List[dict],
        namespace: Optional[str] = None,
        analyze: bool = True,
    ) -> dict:
        """Upload many traces (items: ``{"jsonl": ..., "name"?, "app"?}``)."""
        params = {}
        if namespace:
            params["namespace"] = namespace
        if not analyze:
            params["analyze"] = "0"
        body = json.dumps({"traces": traces}).encode("utf-8")
        return self.request_json(
            "POST",
            "/v1/traces:batch",
            params=params,
            body=body,
            headers={"Content-Type": "application/json"},
        )

    def job(self, job_id: str) -> dict:
        return self.request_json("GET", "/v1/jobs/%s" % job_id)

    def jobs(
        self,
        state: Optional[str] = None,
        namespace: Optional[str] = None,
        limit: int = 0,
    ) -> dict:
        params = {}
        if state:
            params["state"] = state
        if namespace:
            params["namespace"] = namespace
        if limit:
            params["limit"] = str(limit)
        return self.request_json("GET", "/v1/jobs", params=params)

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise ServiceError(
                    504, {"error": "job %s still %s after %.1fs"
                          % (job_id, job["state"], timeout)}
                )
            time.sleep(poll)

    def report_text(
        self,
        trace_digest: str,
        config_digest: Optional[str] = None,
        namespace: Optional[str] = None,
    ) -> str:
        """The report as raw text — byte-comparable against the offline
        ``droidracer analyze --json`` output."""
        params = {}
        if config_digest:
            params["config"] = config_digest
        if namespace:
            params["namespace"] = namespace
        status, data = self.request(
            "GET", "/v1/reports/%s" % trace_digest, params=params
        )
        if status >= 400:
            try:
                payload = json.loads(data.decode("utf-8"))
            except ValueError:
                payload = data.decode("utf-8", "replace")
            raise ServiceError(status, payload)
        return data.decode("utf-8")

    def report(self, trace_digest: str, **kwargs) -> dict:
        return json.loads(self.report_text(trace_digest, **kwargs))

    def corpus(self, namespace: Optional[str] = None) -> dict:
        params = {"namespace": namespace} if namespace else None
        return self.request_json("GET", "/v1/corpus", params=params)

    def compact(self) -> dict:
        return self.request_json("POST", "/v1/compact")

    def stream(
        self, after: int = 0, max_events: int = 0, timeout: Optional[float] = None
    ) -> Iterator[dict]:
        """Yield completion events from ``/v1/stream`` (NDJSON) as they
        arrive; stops after ``max_events`` when nonzero.  Uses its own
        connection (the stream holds it open)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request("GET", "/v1/stream?after=%d" % after)
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    response.status,
                    {"error": response.read().decode("utf-8", "replace")},
                )
            seen = 0
            while True:
                line = response.fp.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
                seen += 1
                if max_events and seen >= max_events:
                    return
        finally:
            conn.close()
