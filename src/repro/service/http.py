"""Minimal asyncio HTTP/1.1 plumbing for ``droidracer serve``.

Deliberately stdlib-only (the container bakes no web framework): just
enough of HTTP/1.1 for a JSON ingest API — request-line + header
parsing, ``Content-Length`` bodies with a configurable cap, optional
``Content-Encoding: gzip`` request bodies, keep-alive, and hand-rolled
responses.  Anything fancier (chunked *request* bodies, pipelining,
TLS) is out of scope and rejected cleanly.

The route layer (:mod:`repro.service.app`) works in terms of
:class:`Request` in and :class:`Response` out; streaming endpoints
(NDJSON / SSE) bypass :class:`Response` and write to the transport
directly after :func:`start_stream`.
"""

from __future__ import annotations

import asyncio
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "json_response",
    "read_request",
    "start_stream",
    "write_response",
]

#: Hard cap on the request head (request line + headers).
MAX_HEAD_BYTES = 32 * 1024
#: Default cap on request bodies; the service can raise it.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024
#: Output granularity for incremental gzip inflation.
_GUNZIP_CHUNK = 256 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(Exception):
    """A request-level failure with an HTTP status and JSON payload."""

    def __init__(self, status: int, message: str, **extra):
        super().__init__(message)
        self.status = status
        self.payload = dict(extra, error=message)


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""
    #: Correlation id minted by the connection handler ("req-000042");
    #: carried into structured log records and job submissions.
    req_id: str = ""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.query.get(name, default)

    def text(self) -> str:
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HttpError(400, "request body is not valid UTF-8: %s" % exc)

    def json(self):
        try:
            return json.loads(self.text())
        except ValueError as exc:
            raise HttpError(400, "request body is not valid JSON: %s" % exc)


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(payload, status: int = 200) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body)


def _gunzip_capped(data: bytes, max_body_bytes: int) -> bytes:
    """Inflate a gzip request body, never materializing more than
    ``max_body_bytes`` of output.

    A whole-buffer ``gzip.decompress`` would let a ~64 KiB compressed
    bomb expand to gigabytes in memory *before* any size check ran, so
    inflation is incremental: abort with ``413`` the moment the output
    budget is exceeded.  Concatenated gzip members (which
    ``gzip.decompress`` accepts) are inflated member by member.
    """
    chunks = []
    total = 0
    budget = max_body_bytes + 1  # one extra byte proves the overflow
    try:
        while data:
            decomp = zlib.decompressobj(16 + zlib.MAX_WBITS)
            while True:
                chunk = decomp.decompress(data, min(_GUNZIP_CHUNK, budget - total))
                data = decomp.unconsumed_tail
                if chunk:
                    total += len(chunk)
                    if total > max_body_bytes:
                        raise HttpError(
                            413,
                            "decompressed body exceeds the %d-byte limit"
                            % max_body_bytes,
                        )
                    chunks.append(chunk)
                if decomp.eof or not data:
                    break
            tail = decomp.flush()
            if tail:
                total += len(tail)
                if total > max_body_bytes:
                    raise HttpError(
                        413,
                        "decompressed body exceeds the %d-byte limit"
                        % max_body_bytes,
                    )
                chunks.append(tail)
            if not decomp.eof:
                raise HttpError(400, "invalid gzip request body: truncated stream")
            data = decomp.unused_data.lstrip(b"\x00")  # next member, if any
    except zlib.error as exc:
        raise HttpError(400, "invalid gzip request body: %s" % exc)
    return b"".join(chunks)


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed heads, unsupported framing
    (chunked request bodies), or bodies beyond ``max_body_bytes``.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head exceeds %d bytes" % MAX_HEAD_BYTES)
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(400, "request head exceeds %d bytes" % MAX_HEAD_BYTES)

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line %r" % lines[0][:120])
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "malformed header line %r" % line[:120])
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "invalid Content-Length %r" % length)
        if n > max_body_bytes:
            raise HttpError(
                413, "request body of %d bytes exceeds the %d-byte limit"
                % (n, max_body_bytes)
            )
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")

    if headers.get("content-encoding", "").lower() == "gzip":
        body = _gunzip_capped(body, max_body_bytes)
        headers.pop("content-encoding")

    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def _head_bytes(
    status: int, headers: Dict[str, str], content_type: str, length: Optional[int]
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    out = ["HTTP/1.1 %d %s" % (status, reason)]
    out.append("Content-Type: %s" % content_type)
    if length is not None:
        out.append("Content-Length: %d" % length)
    for name, value in headers.items():
        out.append("%s: %s" % (name, value))
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    headers = dict(response.headers)
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    writer.write(
        _head_bytes(
            response.status, headers, response.content_type, len(response.body)
        )
    )
    writer.write(response.body)
    await writer.drain()


async def start_stream(
    writer: asyncio.StreamWriter, content_type: str
) -> None:
    """Send the head of an unbounded streaming response.

    No ``Content-Length``: the stream ends when the server closes the
    connection (``Connection: close`` tells the client not to expect
    reuse)."""
    writer.write(
        _head_bytes(200, {"Connection": "close"}, content_type, None)
    )
    await writer.drain()
