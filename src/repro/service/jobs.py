"""Durable, bounded, idempotent analysis job queue for ``droidracer serve``.

The service's unit of work is one *(trace, config)* analysis.  This
module keeps those jobs:

* **durable** — every state transition is one JSON line appended to an
  on-disk journal (``jobs.jsonl``); a killed-and-restarted server
  replays the journal and resumes exactly the submitted-but-unfinished
  jobs, in submission order;
* **bounded** — at most ``max_depth`` jobs may be queued-not-running;
  :meth:`JobQueue.submit` raises :class:`QueueFullError` beyond that and
  the HTTP layer turns it into ``429 Too Many Requests`` backpressure;
* **idempotent** — jobs are keyed by
  ``(namespace, trace_digest, config_digest)``.  Re-submitting an
  active key returns the existing job; re-submitting a completed key
  whose report is still in the :class:`~repro.corpus.cache.ResultCache`
  completes instantly (``cached=True``) without touching the worker
  pool;
* **retried with a limit** — a worker-death failure re-queues the job
  until ``max_attempts`` is exhausted, then parks it as ``failed``.
  Deterministic analysis errors (malformed trace, detector exception)
  fail immediately: retrying a pure function cannot help;
* **bounded in memory** — a long-running service must not grow without
  limit: completion events are kept in a sliding window of the most
  recent ``event_window`` (older ones age out of ``/v1/stream`` replay;
  the journal on disk remains the full record), and once more than
  ``retain_jobs`` job records exist the oldest *terminal* ones are
  pruned (their reports stay in the result cache, so a resubmission of
  a pruned key still short-circuits — it just gets a fresh job id).

The queue is synchronous and thread-safe; the asyncio service wraps it
(`repro.service.app`) and a test can drive it directly.  Completion and
failure produce monotonically numbered *events* which the streaming
endpoint replays (``/v1/stream?after=N``) and tails live.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "Job",
    "JobQueue",
    "QueueFullError",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: States a key counts as "active" in (idempotent resubmission returns
#: the existing job instead of creating another).
_ACTIVE_STATES = (JOB_QUEUED, JOB_RUNNING)

JOURNAL_NAME = "jobs.jsonl"

#: Completion/failure events retained for ``/v1/stream`` replay.
DEFAULT_EVENT_WINDOW = 1024
#: Job records kept in memory before the oldest terminal ones prune.
DEFAULT_RETAIN_JOBS = 4096


class QueueFullError(Exception):
    """The queue is at ``max_depth`` — callers must back off (HTTP 429)."""


@dataclass
class Job:
    """One analysis request's lifecycle record."""

    job_id: str
    trace_digest: str
    config_digest: str
    trace_name: str
    app: str
    namespace: Optional[str] = None
    state: str = JOB_QUEUED
    attempts: int = 0
    cached: bool = False
    error: Optional[str] = None
    seconds: float = 0.0
    submitted_at: float = 0.0
    #: When the job was (last) claimed by a worker — ``started_at -
    #: submitted_at`` is the queue wait the service's wait-time
    #: histogram observes.  0.0 until first claimed.
    started_at: float = 0.0
    finished_at: float = 0.0
    #: HTTP request id that submitted this job (correlation id for the
    #: structured log; empty for journal-recovered or pre-upgrade jobs).
    request_id: str = ""
    race_count: Optional[int] = None
    #: Triage tier verdict: ``"filtered"`` (vc pass proved the trace
    #: race-free, closure skipped — there is no stored report),
    #: ``"escalated"`` (vc found races, full closure ran), or ``None``
    #: (triage off).
    triage: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.namespace or "", self.trace_digest, self.config_digest)

    @property
    def finished(self) -> bool:
        return self.state in (JOB_DONE, JOB_FAILED)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(**data)


class JobQueue:
    """Journaled FIFO of analysis jobs (see module docstring).

    ``journal_path`` may live in a directory that does not exist yet —
    it is created on the first append.  Passing ``journal_path=None``
    runs the queue purely in memory (tests, ephemeral servers).
    """

    def __init__(
        self,
        journal_path: Optional[str] = None,
        max_depth: int = 0,
        max_attempts: int = 3,
        event_window: int = DEFAULT_EVENT_WINDOW,
        retain_jobs: int = DEFAULT_RETAIN_JOBS,
    ):
        self.journal_path = str(journal_path) if journal_path else None
        self.max_depth = max_depth
        self.max_attempts = max_attempts
        self.retain_jobs = retain_jobs
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # submission order, for listing
        self._by_key: Dict[Tuple[str, str, str], str] = {}
        self._pending: Deque[str] = deque()
        # Sliding window of completion/failure events, seq'd; ``0`` or
        # ``None`` keeps every event (tests, short-lived queues).
        self._events: Deque[dict] = deque(maxlen=event_window or None)
        self._seq = 0
        self._journal_handle = None
        self.recovered = 0
        if self.journal_path and os.path.exists(self.journal_path):
            self.recovered = self._replay()

    # -- journal -------------------------------------------------------------

    def _append(self, event: str, payload: dict) -> None:
        if self.journal_path is None:
            return
        if self._journal_handle is None:
            os.makedirs(
                os.path.dirname(self.journal_path) or ".", exist_ok=True
            )
            self._journal_handle = open(
                self.journal_path, "a", encoding="utf-8"
            )
        record = dict(payload, event=event)
        self._journal_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal_handle.flush()

    def _replay(self) -> int:
        """Rebuild queue state from the journal.

        Jobs whose last event left them queued or running come back as
        queued (a ``running`` job at replay time was interrupted by the
        crash — its attempt counter is preserved, and it must run
        again); ``done``/``failed`` jobs are terminal.  Returns the
        number of jobs re-queued.
        """
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                event = record.get("event")
                if event == "submit":
                    job = Job.from_dict(record["job"])
                    self._jobs[job.job_id] = job
                    self._order.append(job.job_id)
                    self._by_key[job.key] = job.job_id
                    continue
                job = self._jobs.get(record.get("job_id", ""))
                if job is None:
                    continue
                if event == "start":
                    job.state = JOB_RUNNING
                    job.attempts = record.get("attempts", job.attempts + 1)
                    job.started_at = record.get("started_at", 0.0)
                elif event == "requeue":
                    job.state = JOB_QUEUED
                    job.error = record.get("error")
                elif event == "done":
                    job.state = JOB_DONE
                    job.error = None
                    job.cached = record.get("cached", False)
                    job.seconds = record.get("seconds", 0.0)
                    job.finished_at = record.get("finished_at", 0.0)
                    job.race_count = record.get("race_count")
                    job.triage = record.get("triage")
                    self._record_event(job)
                elif event == "fail":
                    job.state = JOB_FAILED
                    job.error = record.get("error")
                    job.finished_at = record.get("finished_at", 0.0)
                    self._record_event(job)
        requeued = 0
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state in _ACTIVE_STATES:
                job.state = JOB_QUEUED
                self._pending.append(job_id)
                requeued += 1
        self._prune_locked()
        return requeued

    def _record_event(self, job: Job) -> None:
        self._seq += 1
        self._events.append({"seq": self._seq, "job": job.to_dict()})

    def _prune_locked(self) -> None:
        """Drop the oldest *terminal* job records once more than
        ``retain_jobs`` exist — active jobs are never pruned.  A pruned
        key loses its idempotency memory, but its report lives on in
        the result cache, so resubmission still short-circuits."""
        if not self.retain_jobs:
            return
        excess = len(self._jobs) - self.retain_jobs
        if excess <= 0:
            return
        removed = set()
        for job_id in self._order:
            if excess <= 0:
                break
            job = self._jobs[job_id]
            if not job.finished:
                continue
            del self._jobs[job_id]
            if self._by_key.get(job.key) == job_id:
                del self._by_key[job.key]
            removed.add(job_id)
            excess -= 1
        if removed:
            self._order = [j for j in self._order if j not in removed]

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        trace_digest: str,
        config_digest: str,
        trace_name: str,
        app: str,
        namespace: Optional[str] = None,
        cached: bool = False,
        request_id: str = "",
    ) -> Tuple[Job, bool]:
        """Enqueue one analysis; returns ``(job, created)``.

        ``cached=True`` means the caller already holds the report for
        this key (ResultCache hit): the job is journaled and completed
        in one step, bypassing both the depth bound and the worker pool.
        Idempotency: an active job for the same key is returned as-is
        (``created=False``); a finished one is returned as-is only when
        its report is still available (``cached``), otherwise the key is
        re-analyzed through a fresh job.
        """
        with self._lock:
            key = (namespace or "", trace_digest, config_digest)
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state in _ACTIVE_STATES:
                    return existing, False
                if existing.state == JOB_DONE and cached:
                    return existing, False
            if not cached and self.max_depth and len(self._pending) >= self.max_depth:
                raise QueueFullError(
                    "job queue is full (%d queued, max_depth=%d)"
                    % (len(self._pending), self.max_depth)
                )
            job = Job(
                job_id=self._new_job_id(key),
                trace_digest=trace_digest,
                config_digest=config_digest,
                trace_name=trace_name,
                app=app,
                namespace=namespace,
                submitted_at=time.time(),
                request_id=request_id,
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._by_key[key] = job.job_id
            self._append("submit", {"job": job.to_dict()})
            if cached:
                self._complete_locked(job, seconds=0.0, cached=True)
            else:
                self._pending.append(job.job_id)
            return job, True

    def _new_job_id(self, key: Tuple[str, str, str]) -> str:
        seed = json.dumps([len(self._order), time.time(), key])
        return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]

    # -- worker-side transitions ----------------------------------------------

    def next_job(self) -> Optional[Job]:
        """Claim the oldest queued job (FIFO); marks it running."""
        with self._lock:
            while self._pending:
                job_id = self._pending.popleft()
                job = self._jobs[job_id]
                if job.state != JOB_QUEUED:
                    continue
                job.state = JOB_RUNNING
                job.attempts += 1
                job.started_at = time.time()
                self._append(
                    "start",
                    {
                        "job_id": job_id,
                        "attempts": job.attempts,
                        "started_at": job.started_at,
                    },
                )
                return job
            return None

    def complete(
        self,
        job_id: str,
        seconds: float = 0.0,
        cached: bool = False,
        race_count: Optional[int] = None,
        triage: Optional[str] = None,
    ) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            self._complete_locked(
                job,
                seconds=seconds,
                cached=cached,
                race_count=race_count,
                triage=triage,
            )
            return job

    def _complete_locked(
        self,
        job: Job,
        seconds: float,
        cached: bool,
        race_count: Optional[int] = None,
        triage: Optional[str] = None,
    ) -> None:
        job.state = JOB_DONE
        job.cached = cached
        job.seconds = seconds
        job.error = None
        job.race_count = race_count
        job.triage = triage
        job.finished_at = time.time()
        self._append(
            "done",
            {
                "job_id": job.job_id,
                "seconds": seconds,
                "cached": cached,
                "race_count": race_count,
                "triage": triage,
                "finished_at": job.finished_at,
            },
        )
        self._record_event(job)
        self._prune_locked()

    def fail(self, job_id: str, error: str, retry: bool = False) -> bool:
        """Record a failure; returns True when the job was re-queued.

        ``retry=True`` marks a *transient* failure (worker death): the
        job goes back to the queue until ``max_attempts`` starts have
        been consumed.  ``retry=False`` (deterministic analysis error)
        parks the job as failed immediately.
        """
        with self._lock:
            job = self._jobs[job_id]
            if retry and job.attempts < self.max_attempts:
                job.state = JOB_QUEUED
                job.error = error
                self._pending.append(job_id)
                self._append("requeue", {"job_id": job_id, "error": error})
                return True
            job.state = JOB_FAILED
            job.error = error
            job.finished_at = time.time()
            self._append(
                "fail",
                {
                    "job_id": job_id,
                    "error": error,
                    "finished_at": job.finished_at,
                },
            )
            self._record_event(job)
            self._prune_locked()
            return False

    # -- introspection --------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def find(
        self,
        trace_digest: str,
        config_digest: str,
        namespace: Optional[str] = None,
    ) -> Optional[Job]:
        with self._lock:
            job_id = self._by_key.get(
                (namespace or "", trace_digest, config_digest)
            )
            return self._jobs.get(job_id) if job_id else None

    def jobs(
        self,
        state: Optional[str] = None,
        namespace: Optional[str] = None,
        limit: int = 0,
    ) -> List[Job]:
        with self._lock:
            out = [self._jobs[job_id] for job_id in self._order]
        if state is not None:
            out = [job for job in out if job.state == state]
        if namespace is not None:
            out = [job for job in out if (job.namespace or "") == namespace]
        if limit:
            out = out[-limit:]
        return out

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {
                JOB_QUEUED: 0,
                JOB_RUNNING: 0,
                JOB_DONE: 0,
                JOB_FAILED: 0,
            }
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["depth"] = len(self._pending)
            counts["max_depth"] = self.max_depth
            return counts

    def oldest_queued_age(self, now: Optional[float] = None) -> float:
        """Seconds the oldest still-queued job has waited (0.0 when the
        queue is empty) — the backlog-staleness gauge ``/metrics``
        exposes: depth says how many, this says how stuck."""
        now = time.time() if now is None else now
        with self._lock:
            for job_id in self._pending:
                job = self._jobs.get(job_id)
                if job is not None and job.state == JOB_QUEUED:
                    return max(0.0, now - job.submitted_at)
            return 0.0

    def events_since(self, after: int = 0) -> List[dict]:
        """Completion/failure events with ``seq > after`` (for stream
        replay).  Only the most recent ``event_window`` events are
        retained — a subscriber asking for history older than the
        window gets what is still held (see :attr:`first_retained_seq`)."""
        with self._lock:
            return [event for event in self._events if event["seq"] > after]

    @property
    def first_retained_seq(self) -> int:
        """Sequence number of the oldest event still replayable
        (0 when no events have been recorded or retained)."""
        with self._lock:
            return self._events[0]["seq"] if self._events else 0

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def close(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None
