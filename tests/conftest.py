"""Shared test fixtures."""

import pytest

from repro.apps.paper_traces import figure3_trace, figure4_trace


@pytest.fixture
def fig3():
    return figure3_trace()


@pytest.fixture
def fig4():
    return figure4_trace()
