"""Tests for the AsyncTask protocol."""

import pytest

from repro.android import AndroidSystem, AsyncTask, Ctx, MainThreadError, UIEvent
from repro.android.activity import Activity
from repro.core import detect_races, validate_trace
from repro.core.operations import OpKind


class RecordingTask(AsyncTask):
    """Records which thread each callback ran on."""

    def __init__(self, env, log):
        super().__init__(env, name="RecordingTask")
        self.log = log

    def on_pre_execute(self, ctx: Ctx) -> None:
        self.log.append(("pre", ctx.thread.name))

    def do_in_background(self, ctx: Ctx, *params):
        self.log.append(("bg", ctx.thread.name, params))
        self.publish_progress(ctx, 50)
        yield
        return "result"

    def on_progress_update(self, ctx: Ctx, value) -> None:
        self.log.append(("progress", ctx.thread.name, value))

    def on_post_execute(self, ctx: Ctx, result) -> None:
        self.log.append(("post", ctx.thread.name, result))

    def on_cancelled(self, ctx: Ctx, result) -> None:
        self.log.append(("cancelled", ctx.thread.name))


class HostActivity(Activity):
    task_factory = None

    def on_resume(self, ctx: Ctx) -> None:
        type(self).task_instance = type(self).task_factory(self.env)
        type(self).task_instance.execute(ctx, "arg1")


def run_with_task(factory, seed=0):
    HostActivity.task_factory = staticmethod(factory)
    system = AndroidSystem(seed=seed, name="async-test")
    system.launch(HostActivity)
    system.run_to_quiescence()
    trace = system.finish()
    return system, trace


class TestProtocol:
    def test_callbacks_run_on_correct_threads_in_order(self):
        log = []
        system, trace = run_with_task(lambda env: RecordingTask(env, log))
        validate_trace(trace)
        stages = [entry[0] for entry in log]
        assert stages == ["pre", "bg", "progress", "post"]
        assert log[0][1] == "main"
        assert log[1][1] != "main"  # background thread
        assert log[2][1] == "main" and log[2][2] == 50
        assert log[3][1] == "main" and log[3][2] == "result"

    def test_background_thread_forked_and_exits(self):
        log = []
        system, trace = run_with_task(lambda env: RecordingTask(env, log))
        bg = log[1][1]
        kinds = [(op.kind, op.thread) for op in trace]
        assert (OpKind.FORK, "main") in kinds
        assert (OpKind.THREAD_INIT, bg) in kinds
        assert (OpKind.THREAD_EXIT, bg) in kinds

    def test_progress_and_completion_are_posts_to_main(self):
        log = []
        system, trace = run_with_task(lambda env: RecordingTask(env, log))
        posts = [op for op in trace if op.kind is OpKind.POST]
        names = [op.task for op in posts]
        assert any("onProgressUpdate" in n for n in names)
        assert any("onPostExecute" in n for n in names)

    def test_execute_off_main_thread_rejected(self):
        class BadActivity(Activity):
            def on_resume(self, ctx: Ctx) -> None:
                task = RecordingTask(self.env, [])

                def off_main(tctx: Ctx):
                    task.execute(tctx)

                ctx.fork(off_main, name="rogue")

        system = AndroidSystem(seed=0)
        system.launch(BadActivity)
        from repro.android.errors import AppCrashError

        with pytest.raises(AppCrashError) as info:
            system.run_to_quiescence()
        assert isinstance(info.value.original, MainThreadError)


class TestCancellation:
    def test_cancelled_task_runs_on_cancelled_instead(self):
        class CancellableTask(RecordingTask):
            def do_in_background(self, ctx: Ctx, *params):
                self.log.append(("bg", ctx.thread.name, params))
                self.cancel()
                yield
                return None

        log = []
        system, trace = run_with_task(lambda env: CancellableTask(env, log))
        stages = [entry[0] for entry in log]
        assert "cancelled" in stages
        assert "post" not in stages

    def test_cancel_after_finish_returns_false(self):
        log = []
        system, trace = run_with_task(lambda env: RecordingTask(env, log))
        assert not HostActivity.task_instance.cancel()


class TestSerialExecutor:
    def test_serial_executor_orders_backgrounds(self):
        order = []

        class SerialTask(AsyncTask):
            def __init__(self, env, tag):
                super().__init__(env, name="Serial%s" % tag)
                self.tag = tag

            def do_in_background(self, ctx: Ctx, *params):
                order.append(("start", self.tag))
                yield
                order.append(("finish", self.tag))
                return None

        class SerialActivity(Activity):
            def on_resume(self, ctx: Ctx) -> None:
                SerialTask(self.env, "A").execute_on_serial_executor(ctx)
                SerialTask(self.env, "B").execute_on_serial_executor(ctx)

        system = AndroidSystem(seed=3, name="serial")
        system.launch(SerialActivity)
        system.run_to_quiescence()
        trace = system.finish()
        validate_trace(trace)
        assert order == [
            ("start", "A"),
            ("finish", "A"),
            ("start", "B"),
            ("finish", "B"),
        ]

    def test_serial_tasks_fifo_ordered_no_race(self):
        """Bodies run as tasks on one looper with ordered posts — a shared
        field written by both is FIFO-ordered, not racy."""
        class WriterTask(AsyncTask):
            def __init__(self, env, obj):
                super().__init__(env, name="Writer")
                self.obj = obj

            def do_in_background(self, ctx: Ctx, *params):
                ctx.write(self.obj, "shared", self.name)

        class TwoWriters(Activity):
            def on_resume(self, ctx: Ctx) -> None:
                WriterTask(self.env, self.obj).execute_on_serial_executor(ctx)
                WriterTask(self.env, self.obj).execute_on_serial_executor(ctx)

        system = AndroidSystem(seed=1, name="serial-race")
        system.launch(TwoWriters)
        system.run_to_quiescence()
        trace = system.finish()
        report = detect_races(trace)
        shared = [r for r in report.races if r.location.endswith("shared")]
        assert shared == []

    def test_forked_backgrounds_do_race(self):
        """The same two writers with plain execute (fresh thread each) DO
        race — the serial executor is the ordering."""
        class WriterTask(AsyncTask):
            def __init__(self, env, obj):
                super().__init__(env, name="Writer")
                self.obj = obj

            def do_in_background(self, ctx: Ctx, *params):
                ctx.write(self.obj, "shared", self.name)

        class TwoWriters(Activity):
            def on_resume(self, ctx: Ctx) -> None:
                WriterTask(self.env, self.obj).execute(ctx)
                WriterTask(self.env, self.obj).execute(ctx)

        system = AndroidSystem(seed=1, name="forked-race")
        system.launch(TwoWriters)
        system.run_to_quiescence()
        trace = system.finish()
        report = detect_races(trace)
        shared = [r for r in report.races if r.location.endswith("shared")]
        assert len(shared) == 1
