"""Ablation tests: the baseline relations behave as the paper argues
(§1, §4.1 'Specializations', §7)."""

import pytest

from repro.core.baselines import (
    ALL_CONFIGS,
    EVENT_DRIVEN_ONLY,
    MULTITHREADED_ONLY,
    NAIVE_COMBINED,
    NO_ENABLE,
    NO_FIFO,
)
from repro.core.happens_before import ANDROID_HB, HappensBefore
from repro.core.operations import (
    acquire,
    attachq,
    begin,
    enable,
    end,
    fork,
    looponq,
    post,
    read,
    release,
    threadinit,
    write,
)
from repro.core.race_detector import detect_races
from repro.core.trace import ExecutionTrace

PRELUDE = [threadinit("t"), attachq("t"), looponq("t")]


def single_threaded_race_trace():
    """Two unordered tasks on the main thread writing one location — the
    race class only event-aware analyses can see."""
    return ExecutionTrace(
        PRELUDE
        + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            write("t", "O@1.x"),
            end("t", "p1"),
            begin("t", "p2"),
            write("t", "O@1.x"),
            end("t", "p2"),
        ]
    )


def lock_masked_race_trace():
    """Two same-thread tasks sharing a lock also used by another thread —
    really racy; the naive combination spuriously orders them."""
    return ExecutionTrace(
        PRELUDE
        + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            acquire("t", "l"),
            write("t", "O@1.x"),
            release("t", "l"),
            end("t", "p1"),
            acquire("u", "l"),
            release("u", "l"),
            begin("t", "p2"),
            acquire("t", "l"),
            write("t", "O@1.x"),
            release("t", "l"),
            end("t", "p2"),
        ]
    )


def lock_protected_mt_trace():
    """A cross-thread pair correctly ordered by a lock — event-only
    analysis reports a false positive here."""
    return ExecutionTrace(
        [
            threadinit("t"),
            threadinit("u"),
            acquire("t", "l"),
            write("t", "O@1.x"),
            release("t", "l"),
            acquire("u", "l"),
            write("u", "O@1.x"),
            release("u", "l"),
        ]
    )


class TestMultithreadedOnly:
    def test_misses_single_threaded_races(self):
        """Full program order on the looper thread hides event races —
        'they ... filter away races among procedures running on the same
        thread, and thereby, miss single-threaded races' (§7)."""
        trace = single_threaded_race_trace()
        android = detect_races(trace, config=ANDROID_HB)
        mt_only = detect_races(trace, config=MULTITHREADED_ONLY)
        assert len(android.races) == 1
        assert mt_only.races == []

    def test_still_finds_multithreaded_races(self):
        trace = ExecutionTrace(
            [threadinit("t"), threadinit("u"), write("t", "x"), write("u", "x")]
        )
        assert len(detect_races(trace, config=MULTITHREADED_ONLY).races) == 1

    def test_respects_locks(self):
        assert detect_races(lock_protected_mt_trace(), config=MULTITHREADED_ONLY).races == []


class TestEventDrivenOnly:
    def test_false_positive_on_lock_protected_pair(self):
        trace = lock_protected_mt_trace()
        android = detect_races(trace, config=ANDROID_HB)
        event_only = detect_races(trace, config=EVENT_DRIVEN_ONLY)
        assert android.races == []
        assert len(event_only.races) == 1

    def test_false_positive_on_fork_ordered_pair(self):
        trace = ExecutionTrace(
            [
                threadinit("t"),
                write("t", "x"),
                fork("t", "u"),
                threadinit("u"),
                write("u", "x"),
            ]
        )
        assert detect_races(trace, config=ANDROID_HB).races == []
        assert len(detect_races(trace, config=EVENT_DRIVEN_ONLY).races) == 1

    def test_still_finds_single_threaded_races(self):
        assert len(detect_races(single_threaded_race_trace(), config=EVENT_DRIVEN_ONLY).races) == 1


class TestNaiveCombined:
    def test_misses_lock_masked_single_threaded_race(self):
        """The §1 motivation: the naive combination induces an ordering
        between two same-thread tasks that merely share a lock."""
        trace = lock_masked_race_trace()
        android = detect_races(trace, config=ANDROID_HB)
        naive = detect_races(trace, config=NAIVE_COMBINED)
        assert len(android.races) == 1  # the real race is reported
        assert naive.races == []  # the naive relation masks it

    def test_agrees_on_plain_multithreaded_race(self):
        trace = ExecutionTrace(
            [threadinit("t"), threadinit("u"), write("t", "x"), write("u", "x")]
        )
        assert len(detect_races(trace, config=NAIVE_COMBINED).races) == 1


class TestNoEnable:
    def test_lifecycle_false_positive_without_enables(self):
        trace = ExecutionTrace(
            [
                threadinit("b1"),
                threadinit("b2"),
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                post("b1", "LAUNCH", "t"),
                begin("t", "LAUNCH"),
                write("t", "act.flag"),
                enable("t", "onDestroy"),
                end("t", "LAUNCH"),
                post("b2", "onDestroy", "t"),
                begin("t", "onDestroy"),
                write("t", "act.flag"),
                end("t", "onDestroy"),
            ]
        )
        assert detect_races(trace, config=ANDROID_HB).races == []
        assert len(detect_races(trace, config=NO_ENABLE).races) == 1


class TestNoFifo:
    def test_fifo_ordered_tasks_race_without_the_rule(self):
        trace = ExecutionTrace(
            PRELUDE
            + [
                threadinit("u"),
                post("u", "p1", "t"),
                post("u", "p2", "t"),
                begin("t", "p1"),
                write("t", "x"),
                end("t", "p1"),
                begin("t", "p2"),
                write("t", "x"),
                end("t", "p2"),
            ]
        )
        assert detect_races(trace, config=ANDROID_HB).races == []
        assert len(detect_races(trace, config=NO_FIFO).races) == 1


class TestConfigRegistry:
    def test_all_configs_run_on_figure4(self):
        from repro.apps.paper_traces import figure4_trace

        for name, config in ALL_CONFIGS.items():
            report = detect_races(figure4_trace(), config=config)
            assert report is not None, name

    def test_android_config_is_default(self):
        from repro.core.happens_before import HBConfig

        assert ALL_CONFIGS["android"] == HBConfig()


class TestInclusionProperties:
    """Structural sanity: the android relation orders everything the
    event-only relation orders (event rules are a subset), so its race
    *pairs* are a subset of event-only's."""

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_android_races_subset_of_event_only(self, seed):
        from repro.apps.music_player import run_scenario

        _, trace = run_scenario(press_back=True, seed=seed)
        android = detect_races(trace, config=ANDROID_HB)
        event_only = detect_races(trace, config=EVENT_DRIVEN_ONLY)
        android_keys = {(r.location, r.category) for r in android.races}
        event_keys = {(r.location, r.category) for r in event_only.races}
        assert android_keys <= event_keys
