"""Tests for the benchmark harness: stats, runner, table rendering."""

import pytest

from repro.apps.specs import OPEN_SOURCE_SPECS, SPEC_BY_NAME
from repro.bench import (
    TraceStats,
    render_performance,
    render_table2,
    render_table3,
    render_table3_expected,
    run_all,
    run_paper_app,
)
from repro.core.trace import ExecutionTrace
from repro.core.operations import attachq, begin, end, post, read, threadinit, write


@pytest.fixture(scope="module")
def small_results():
    specs = [SPEC_BY_NAME["Aard Dictionary"], SPEC_BY_NAME["Remind Me"]]
    return run_all(specs, scale=0.2, seed=5)


class TestTraceStats:
    def test_stats_of_simple_trace(self):
        trace = ExecutionTrace(
            [
                threadinit("main"),
                attachq("main"),
                threadinit("binder-1"),
                threadinit("worker"),
                post("binder-1", "p", "main"),
                write("worker", "O@1.x"),
                read("worker", "O@1.y"),
            ],
            name="s",
        )
        stats = TraceStats.of(trace, "s")
        assert stats.trace_length == 7
        assert stats.fields == 2
        # binder threads excluded, worker counted:
        assert stats.threads_without_queues == 1
        assert stats.threads_with_queues == 1
        assert stats.async_tasks == 0


class TestRunner:
    def test_run_result_structure(self, small_results):
        result = small_results[0]
        assert result.spec.name == "Aard Dictionary"
        assert result.stats.async_tasks == result.spec.async_tasks
        assert result.report.races
        counts = result.category_counts()
        from repro.core.classification import RaceCategory

        assert counts[RaceCategory.MULTITHREADED] == (1, 1)

    def test_proprietary_true_counts_are_none(self, small_results):
        remind_me = small_results[1]
        from repro.core.classification import RaceCategory

        counts = remind_me.category_counts()
        assert counts[RaceCategory.CROSS_POSTED] == (21, None)
        assert counts[RaceCategory.CO_ENABLED] == (33, None)


class TestRendering:
    def test_table2_contains_all_columns(self, small_results):
        text = render_table2(small_results)
        assert "Aard Dictionary" in text
        assert "Remind Me" in text
        assert "Trace length" in text and "Async tasks" in text

    def test_table3_formats_xy(self, small_results):
        text = render_table3(small_results)
        assert "1 (1)" in text  # Aard multithreaded
        assert "Total" in text
        # proprietary rows show bare numbers
        assert " 21 " in text or "21  " in text

    def test_table3_expected_flags_no_mismatch(self, small_results):
        text = render_table3_expected(small_results)
        assert "MISMATCH" not in text

    def test_performance_mentions_paper_band(self, small_results):
        text = render_performance(small_results)
        assert "1.4%" in text and "24.8%" in text
        assert "Aard Dictionary" in text
