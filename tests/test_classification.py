"""Tests for race classification (§4.3): multithreaded, co-enabled,
delayed, cross-posted, unknown — checked in the paper's order."""

import pytest

from repro.core.classification import RaceCategory, classify_race
from repro.core.happens_before import HappensBefore
from repro.core.operations import (
    attachq,
    begin,
    enable,
    end,
    fork,
    looponq,
    post,
    read,
    threadinit,
    write,
)
from repro.core.race_detector import detect_races
from repro.core.trace import ExecutionTrace

PRELUDE = [threadinit("t"), attachq("t"), looponq("t")]


def classify(ops, i, j):
    trace = ExecutionTrace(list(ops))
    hb = HappensBefore(trace)
    return classify_race(trace, hb, i, j)


class TestMultithreaded:
    def test_cross_thread_pair(self):
        ops = [threadinit("t"), threadinit("u"), write("t", "x"), write("u", "x")]
        assert classify(ops, 2, 3) is RaceCategory.MULTITHREADED

    def test_order_of_arguments_is_normalized(self):
        ops = [threadinit("t"), threadinit("u"), write("t", "x"), write("u", "x")]
        assert classify(ops, 3, 2) is RaceCategory.MULTITHREADED


class TestCoEnabled:
    def _two_event_tasks(self):
        return PRELUDE + [
            enable("t", "click:a"),  # 3
            enable("t", "click:b"),  # 4
            post("t", "onA", "t", event="click:a"),  # 5
            post("t", "onB", "t", event="click:b"),  # 6
            begin("t", "onA"),
            write("t", "x"),  # 8
            end("t", "onA"),
            begin("t", "onB"),
            write("t", "x"),  # 11
            end("t", "onB"),
        ]

    def test_two_unordered_event_handlers_co_enabled(self):
        assert classify(self._two_event_tasks(), 8, 11) is RaceCategory.CO_ENABLED

    def test_same_event_post_not_co_enabled(self):
        """If both chains share the same most-recent event post, the pair
        is not co-enabled (β ≺ β reflexively): falls through to the next
        categories."""
        # Two tasks where only one chain has an event post: classification
        # must skip co-enabled.
        trace_ops = PRELUDE + [
            enable("t", "click:a"),  # 3
            post("t", "onA", "t", event="click:a"),  # 4
            begin("t", "onA"),  # 5
            fork("t", "u"),  # 6
            end("t", "onA"),  # 7
            threadinit("u"),  # 8
            post("u", "px", "t"),  # 9 cross-posted, chain: [4?] no — [9]
            begin("t", "px"),  # 10
            write("t", "x"),  # 11
            end("t", "px"),  # 12
            post("t", "py", "t"),  # 13 plain main post
            begin("t", "py"),  # 14
            write("t", "x"),  # 15
            end("t", "py"),
        ]
        category = classify(trace_ops, 11, 15)
        assert category is not RaceCategory.CO_ENABLED


class TestDelayed:
    def test_delayed_vs_plain_post(self):
        ops = PRELUDE + [
            post("t", "slow", "t", delay=100),  # 3
            post("t", "fast", "t"),  # 4
            begin("t", "fast"),
            write("t", "x"),  # 6
            end("t", "fast"),
            begin("t", "slow"),
            write("t", "x"),  # 9
            end("t", "slow"),
        ]
        assert classify(ops, 6, 9) is RaceCategory.DELAYED

    def test_two_distinct_delayed_posts(self):
        ops = PRELUDE + [
            post("t", "slow", "t", delay=500),
            post("t", "fast", "t", delay=10),
            begin("t", "fast"),
            write("t", "x"),  # 6
            end("t", "fast"),
            begin("t", "slow"),
            write("t", "x"),  # 9
            end("t", "slow"),
        ]
        assert classify(ops, 6, 9) is RaceCategory.DELAYED


class TestCrossPosted:
    def test_task_posted_from_other_thread(self):
        ops = PRELUDE + [
            threadinit("u"),
            post("u", "px", "t"),  # 4: from another thread
            begin("t", "px"),
            write("t", "x"),  # 6
            end("t", "px"),
            post("t", "py", "t"),  # 8: from the main thread itself
            begin("t", "py"),
            write("t", "x"),  # 10
            end("t", "py"),
        ]
        assert classify(ops, 6, 10) is RaceCategory.CROSS_POSTED


class TestUnknown:
    def test_two_plain_main_posts_unknown(self):
        ops = PRELUDE + [
            post("t", "p1", "t"),  # 3 — in_task None, no event, no delay
            begin("t", "p1"),
            write("t", "x"),  # 5
            end("t", "p1"),
            post("t", "p2", "t"),  # 7
            begin("t", "p2"),
            write("t", "x"),  # 9
            end("t", "p2"),
        ]
        # NOTE: posts 3 and 7 are both outside tasks on the looper thread,
        # hence unordered, so the tasks race; chains have no event, delayed
        # or cross-thread posts -> unknown.
        assert classify(ops, 5, 9) is RaceCategory.UNKNOWN


class TestOrderOfChecks:
    def test_co_enabled_takes_precedence_over_cross_posted(self):
        """A pair that satisfies both co-enabled and cross-posted criteria
        is reported co-enabled (the paper checks in order)."""
        ops = PRELUDE + [
            enable("t", "click:a"),  # 3
            enable("t", "click:b"),  # 4
            post("t", "onA", "t", event="click:a"),  # 5
            begin("t", "onA"),  # 6
            fork("t", "u"),  # 7
            end("t", "onA"),  # 8
            threadinit("u"),  # 9
            post("u", "px", "t"),  # 10: cross-thread, chain [5?] no: [10]
            begin("t", "px"),  # 11
            write("t", "x"),  # 12
            end("t", "px"),  # 13
            post("t", "onB", "t", event="click:b"),  # 14
            begin("t", "onB"),  # 15
            write("t", "x"),  # 16
            end("t", "onB"),
        ]
        # chain(12) = [10] (no event posts); chain(16) = [14] (event post).
        # co-enabled needs BOTH chains to carry event posts -> falls to
        # cross-posted here.
        assert classify(ops, 12, 16) is RaceCategory.CROSS_POSTED

    def test_end_to_end_categories_from_detector(self):
        from repro.apps.specs import SPEC_BY_NAME
        from repro.apps.synthetic import SyntheticApp

        app = SyntheticApp(SPEC_BY_NAME["Music Player"], scale=0.2)
        _, trace = app.run(seed=3)
        report = detect_races(trace)
        counts = {c: report.count(c) for c in RaceCategory}
        assert counts[RaceCategory.CROSS_POSTED] == 17
        assert counts[RaceCategory.CO_ENABLED] == 11
        assert counts[RaceCategory.DELAYED] == 4
        assert counts[RaceCategory.UNKNOWN] == 3
        assert counts[RaceCategory.MULTITHREADED] == 0
