"""Tests for the droidracer command-line interface."""

import pytest

from repro.cli import main


class TestTables:
    def test_table3_open_source(self, capsys):
        assert main(["table3", "--open-source-only", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Aard Dictionary" in out
        assert "Total" in out
        assert "27 (15)" in out  # paper's multithreaded total

    def test_table2(self, capsys):
        assert main(["table2", "--open-source-only", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "K-9 Mail" in out

    def test_performance(self, capsys):
        assert main(["performance", "--open-source-only", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "reduction ratio" in out


class TestRun:
    def test_run_single_app(self, capsys):
        assert main(["run", "Music Player", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "cross-posted: 17" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "Nonexistent"])


class TestDemo:
    def test_demo_with_save_trace_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["demo", "dictionary", "--save-trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "race report" in out

    def test_demo_with_explicit_events(self, capsys):
        assert main(["demo", "music-player", "--events", "back"]) == 0
        out = capsys.readouterr().out
        assert "2 race reports" in out

    def test_demo_unknown_event_lists_available(self, capsys):
        assert main(["demo", "music-player", "--events", "click:nope"]) == 1
        out = capsys.readouterr().out
        assert "not enabled" in out and "back" in out


class TestExplore:
    def test_explore_demo(self, capsys):
        assert main(["explore", "music-player", "--depth", "1", "--max-runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "music-player" in out
        assert "race report" in out


class TestAnalyze:
    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 race reports" in out
        assert "multithreaded" in out and "cross-posted" in out

    def test_analyze_with_explanations(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "why these operations are unordered" in out
        assert "post chain" in out


class TestJsonOutput:
    def test_run_json(self, capsys):
        import json

        assert main(["run", "Music Player", "--scale", "0.15", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trace_name"] == "Music Player"
        assert len(data["races"]) == 35
        assert all("category" in race and "op_i" in race for race in data["races"])

    def test_analyze_json(self, tmp_path, capsys):
        import json

        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["races"]) == 2
        assert {r["category"] for r in data["races"]} == {
            "multithreaded",
            "cross-posted",
        }


class TestCorpusCommands:
    @staticmethod
    def _seed_corpus(tmp_path, capsys):
        store = str(tmp_path / "corpus")
        trace = tmp_path / "mp.jsonl"
        assert (
            main(
                [
                    "run",
                    "Music Player",
                    "--scale",
                    "0.1",
                    "--save-trace",
                    str(trace),
                ]
            )
            == 0
        )
        assert main(["corpus", "ingest", str(trace), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s) ingested" in out
        return store

    def test_ingest_analyze_report(self, tmp_path, capsys):
        store = self._seed_corpus(tmp_path, capsys)
        assert main(["corpus", "analyze", "--store", store, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 traces analyzed (0 errors)" in out
        assert "0 cache hits / 1 misses" in out

        # Second pass is served from the cache.
        assert main(["corpus", "analyze", "--store", store, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 cache hits / 0 misses" in out
        assert "[cached]" in out

        assert main(["corpus", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Corpus race report" in out and "Total" in out

    def test_corpus_json(self, tmp_path, capsys):
        import json

        store = self._seed_corpus(tmp_path, capsys)
        assert main(["corpus", "report", "--store", store, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["traces_total"] == 1
        assert data["cache"]["misses"] == 1

        assert main(["corpus", "analyze", "--store", store, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["traces"][0]["cached"] is True
        assert data["traces"][0]["report"]["races"]

    def test_empty_corpus_is_an_error(self, tmp_path, capsys):
        store = str(tmp_path / "nothing")
        assert main(["corpus", "analyze", "--store", store]) == 1
        assert "empty" in capsys.readouterr().err

    def test_explore_with_store(self, tmp_path, capsys):
        store = str(tmp_path / "corpus")
        assert (
            main(
                [
                    "explore",
                    "music-player",
                    "--depth",
                    "1",
                    "--max-runs",
                    "3",
                    "--store",
                    store,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "now holds" in out
        assert main(["corpus", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "music-player" in out
