"""Tests for the droidracer command-line interface."""

import pytest

from repro.cli import main


class TestTables:
    def test_table3_open_source(self, capsys):
        assert main(["table3", "--open-source-only", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Aard Dictionary" in out
        assert "Total" in out
        assert "27 (15)" in out  # paper's multithreaded total

    def test_table2(self, capsys):
        assert main(["table2", "--open-source-only", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "K-9 Mail" in out

    def test_performance(self, capsys):
        assert main(["performance", "--open-source-only", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "reduction ratio" in out


class TestRun:
    def test_run_single_app(self, capsys):
        assert main(["run", "Music Player", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "cross-posted: 17" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "Nonexistent"])


class TestDemo:
    def test_demo_with_save_trace_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["demo", "dictionary", "--save-trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "race report" in out

    def test_demo_with_explicit_events(self, capsys):
        assert main(["demo", "music-player", "--events", "back"]) == 0
        out = capsys.readouterr().out
        assert "2 race reports" in out

    def test_demo_unknown_event_lists_available(self, capsys):
        assert main(["demo", "music-player", "--events", "click:nope"]) == 1
        out = capsys.readouterr().out
        assert "not enabled" in out and "back" in out


class TestExplore:
    def test_explore_demo(self, capsys):
        assert main(["explore", "music-player", "--depth", "1", "--max-runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "music-player" in out
        assert "race report" in out


class TestAnalyze:
    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 race reports" in out
        assert "multithreaded" in out and "cross-posted" in out

    def test_analyze_with_explanations(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "why these operations are unordered" in out
        assert "post chain" in out
