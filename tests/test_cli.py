"""Tests for the droidracer command-line interface."""

import pytest

from repro.cli import main


class TestTables:
    def test_table3_open_source(self, capsys):
        assert main(["table3", "--open-source-only", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Aard Dictionary" in out
        assert "Total" in out
        assert "27 (15)" in out  # paper's multithreaded total

    def test_table2(self, capsys):
        assert main(["table2", "--open-source-only", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "K-9 Mail" in out

    def test_performance(self, capsys):
        assert main(["performance", "--open-source-only", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "reduction ratio" in out


class TestRun:
    def test_run_single_app(self, capsys):
        assert main(["run", "Music Player", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "cross-posted: 17" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "Nonexistent"])


class TestDemo:
    def test_demo_with_save_trace_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["demo", "dictionary", "--save-trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "race report" in out

    def test_demo_with_explicit_events(self, capsys):
        assert main(["demo", "music-player", "--events", "back"]) == 0
        out = capsys.readouterr().out
        assert "2 race reports" in out

    def test_demo_unknown_event_lists_available(self, capsys):
        assert main(["demo", "music-player", "--events", "click:nope"]) == 1
        out = capsys.readouterr().out
        assert "not enabled" in out and "back" in out


class TestExplore:
    def test_explore_demo(self, capsys):
        assert main(["explore", "music-player", "--depth", "1", "--max-runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "music-player" in out
        assert "race report" in out


class TestAnalyze:
    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 race reports" in out
        assert "multithreaded" in out and "cross-posted" in out

    def test_analyze_with_explanations(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "why these operations are unordered" in out
        assert "post chain" in out


class TestJsonOutput:
    def test_run_json(self, capsys):
        import json

        assert main(["run", "Music Player", "--scale", "0.15", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trace_name"] == "Music Player"
        assert len(data["races"]) == 35
        assert all("category" in race and "op_i" in race for race in data["races"])

    def test_analyze_json(self, tmp_path, capsys):
        import json

        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        assert main(["analyze", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["races"]) == 2
        assert {r["category"] for r in data["races"]} == {
            "multithreaded",
            "cross-posted",
        }


class TestCorpusCommands:
    @staticmethod
    def _seed_corpus(tmp_path, capsys):
        store = str(tmp_path / "corpus")
        trace = tmp_path / "mp.jsonl"
        assert (
            main(
                [
                    "run",
                    "Music Player",
                    "--scale",
                    "0.1",
                    "--save-trace",
                    str(trace),
                ]
            )
            == 0
        )
        assert main(["corpus", "ingest", str(trace), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s) ingested" in out
        return store

    def test_ingest_analyze_report(self, tmp_path, capsys):
        store = self._seed_corpus(tmp_path, capsys)
        assert main(["corpus", "analyze", "--store", store, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 traces analyzed (0 errors)" in out
        assert "0 cache hits / 1 misses" in out

        # Second pass is served from the cache.
        assert main(["corpus", "analyze", "--store", store, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 cache hits / 0 misses" in out
        assert "[cached]" in out

        assert main(["corpus", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Corpus race report" in out and "Total" in out

    def test_corpus_json(self, tmp_path, capsys):
        import json

        store = self._seed_corpus(tmp_path, capsys)
        assert main(["corpus", "report", "--store", store, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["traces_total"] == 1
        assert data["cache"]["misses"] == 1

        assert main(["corpus", "analyze", "--store", store, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["traces"][0]["cached"] is True
        assert data["traces"][0]["report"]["races"]

    def test_empty_corpus_is_an_error(self, tmp_path, capsys):
        store = str(tmp_path / "nothing")
        assert main(["corpus", "analyze", "--store", store]) == 1
        assert "empty" in capsys.readouterr().err

    def test_explore_with_store(self, tmp_path, capsys):
        store = str(tmp_path / "corpus")
        assert (
            main(
                [
                    "explore",
                    "music-player",
                    "--depth",
                    "1",
                    "--max-runs",
                    "3",
                    "--store",
                    store,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "now holds" in out
        assert main(["corpus", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "music-player" in out


class TestExploreDemoMetrics:
    """Satellite of the observability PR: ``--metrics`` / ``--trace-out``
    reach every pipeline command, including ``explore`` and ``demo``."""

    def test_explore_metrics_and_trace_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "explore-trace.json"
        assert (
            main(
                [
                    "explore",
                    "music-player",
                    "--depth",
                    "1",
                    "--max-runs",
                    "3",
                    "--metrics",
                    "--trace-out",
                    str(out_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "-- metrics" in captured.err
        assert "pipeline trace written" in captured.err
        payload = json.loads(out_path.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "cli.explore" in names and "detect" in names

    def test_demo_metrics_and_trace_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "demo-trace.json"
        assert (
            main(
                ["demo", "music-player", "--metrics", "--trace-out", str(out_path)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "-- metrics" in captured.err
        payload = json.loads(out_path.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "cli.demo" in names and "detect" in names

    def test_metrics_never_changes_explore_report(self, capsys):
        argv = ["explore", "music-player", "--depth", "1", "--max-runs", "3"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--metrics"]) == 0
        assert capsys.readouterr().out == plain


class TestObsCommands:
    """The ``droidracer obs`` family over a real history store."""

    @pytest.fixture(autouse=True)
    def _no_ambient_history(self, monkeypatch):
        from repro.obs import HISTORY_ENV

        monkeypatch.delenv(HISTORY_ENV, raising=False)

    @pytest.fixture()
    def trace_path(self, tmp_path):
        from repro.apps.paper_traces import figure4_trace

        path = tmp_path / "fig4.jsonl"
        path.write_text(figure4_trace().to_jsonl())
        return str(path)

    @pytest.fixture()
    def history(self, tmp_path, trace_path, capsys):
        hist = str(tmp_path / "hist")
        assert main(["analyze", trace_path, "--history", hist]) == 0
        assert main(["analyze", trace_path, "--history", hist]) == 0
        err = capsys.readouterr().err
        assert err.count("history:") == 2
        return hist

    def test_obs_without_history_dir_is_an_error(self, capsys):
        assert main(["obs", "history"]) == 1
        assert "no history store configured" in capsys.readouterr().err

    def test_history_listing_and_json(self, history, capsys):
        import json

        assert main(["obs", "history", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "analyze" in out and out.count("\n") >= 3
        assert main(["obs", "history", "--history", history, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert records[0]["report_digest"] == records[1]["report_digest"]
        assert records[0]["race_count"] == 2

    def test_history_env_var_supplies_default(
        self, tmp_path, trace_path, monkeypatch, capsys
    ):
        from repro.obs import HISTORY_ENV

        hist = str(tmp_path / "envhist")
        monkeypatch.setenv(HISTORY_ENV, hist)
        assert main(["analyze", trace_path]) == 0
        assert "history:" in capsys.readouterr().err
        assert main(["obs", "history"]) == 0
        assert "analyze" in capsys.readouterr().out

    def test_compare_same_key(self, history, capsys):
        assert main(["obs", "compare", "1", "2", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "report digests match" in out or "race(s)" in out
        assert "CORRECTNESS DRIFT" not in out

    def test_compare_unknown_run_is_an_error(self, history, capsys):
        assert main(["obs", "compare", "1", "zzzz", "--history", history]) == 1
        assert "obs compare" in capsys.readouterr().err

    def test_gate_clean_then_injected_correctness_drift(self, history, capsys):
        from repro.obs import HistoryStore

        assert main(["obs", "gate", "--history", history]) == 0
        assert "PASS" in capsys.readouterr().out

        store = HistoryStore(history)
        tampered = store.records()[-1]
        tampered.report_digest = "0" * 64
        tampered.race_count += 5
        store.append(tampered)
        assert main(["obs", "gate", "--history", history]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "correctness" in out

    def test_gate_injected_perf_drift_beyond_threshold(
        self, history, tmp_path, capsys
    ):
        from repro.obs import HistoryStore

        baseline = str(tmp_path / "baseline")
        base_store = HistoryStore(baseline)
        slow_store = HistoryStore(history)
        slowed = slow_store.records()[-1]
        for row in slowed.spans:
            row["wall_seconds"] *= 100.0
        base_store.append(slow_store.records()[0])
        slow_store.append(slowed)
        argv = [
            "obs",
            "gate",
            "--history",
            history,
            "--baseline",
            baseline,
            "--min-seconds",
            "0.000001",
        ]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "performance" in out
        # A generous threshold lets the same slowdown through.
        assert main(argv + ["--threshold", "1000"]) == 0

    def test_dashboard_writes_self_contained_html(self, history, tmp_path, capsys):
        out_path = tmp_path / "dash.html"
        assert (
            main(
                ["obs", "dashboard", "--history", history, "--out", str(out_path)]
            )
            == 0
        )
        assert "dashboard" in capsys.readouterr().out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html
        assert "<script src" not in html.lower()

    def test_export_bench_round_trips_payload(self, history, tmp_path, capsys):
        from repro.obs import HistoryStore, RunRecord

        # Nothing benchmark-shaped recorded yet: explicit failure.
        export_dir = str(tmp_path / "views")
        argv = [
            "obs",
            "history",
            "--history",
            history,
            "--export-bench",
            export_dir,
        ]
        assert main(argv) == 1
        assert "no benchmark runs" in capsys.readouterr().err

        import json

        payload = {"benchmark": "closure-engine", "configs": [{"races": 12}]}
        HistoryStore(history).append(
            RunRecord(
                command="bench.closure",
                trace_digest="t" * 64,
                config_digest="c" * 64,
                extra={"payload": payload},
            )
        )
        assert main(argv) == 0
        capsys.readouterr()
        written = json.loads(
            (tmp_path / "views" / "BENCH_closure.json").read_text()
        )
        assert written == payload

    def test_history_never_changes_report_output(self, trace_path, tmp_path, capsys):
        import json

        assert main(["analyze", trace_path, "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        hist = str(tmp_path / "hist2")
        assert main(["analyze", trace_path, "--json", "--history", hist]) == 0
        captured = capsys.readouterr()
        recorded = json.loads(captured.out)
        plain.pop("analysis_seconds"), recorded.pop("analysis_seconds")
        assert recorded == plain
        assert "metrics" not in recorded
        assert "history:" in captured.err


class TestGuidedExploreCli:
    """The corpus -> explorer feedback loop at the CLI surface."""

    @pytest.fixture(autouse=True)
    def _no_ambient_history(self, monkeypatch):
        from repro.obs import HISTORY_ENV

        monkeypatch.delenv(HISTORY_ENV, raising=False)

    def test_guided_without_history_degrades(self, capsys):
        argv = [
            "explore", "music-player", "--strategy", "guided",
            "--budget", "3", "--sequences", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "degrades to seeded-random" in out
        assert "music-player/guided:" in out

    def test_random_baseline_strategies(self, capsys):
        for strategy in ("monkey", "dynodroid"):
            argv = [
                "explore", "music-player", "--strategy", strategy,
                "--budget", "3", "--sequences", "2",
            ]
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "music-player/%s" % strategy in out

    def test_feedback_loop_end_to_end(self, tmp_path, capsys):
        import json

        hist = str(tmp_path / "hist")
        # Seed: a systematic exploration records suspicion documents.
        assert main(
            ["explore", "music-player", "--depth", "1", "--max-runs", "4",
             "--history", hist]
        ) == 0
        capsys.readouterr()
        # Mine and inspect the index.
        assert main(["obs", "suspicion", "--history", hist]) == 0
        out = capsys.readouterr().out
        assert "location" in out and "score" in out
        assert main(
            ["obs", "suspicion", "--history", hist, "--app", "music-player",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "music-player" in doc["apps"]
        # Consume: guided exploration mines the same store.
        assert main(
            ["explore", "music-player", "--strategy", "guided",
             "--budget", "3", "--sequences", "2", "--history", hist]
        ) == 0
        out = capsys.readouterr().out
        assert "suspicion index:" in out and "scored location" in out

    def test_obs_suspicion_export(self, tmp_path, capsys):
        hist = str(tmp_path / "hist")
        assert main(
            ["explore", "music-player", "--depth", "1", "--max-runs", "4",
             "--history", hist]
        ) == 0
        capsys.readouterr()
        export = tmp_path / "exported"
        assert main(
            ["obs", "suspicion", "--history", hist, "--export", str(export)]
        ) == 0
        assert (export / "suspicion_index.json").exists()

    def test_obs_suspicion_without_signals_is_an_error(self, tmp_path, capsys):
        from repro.apps.paper_traces import figure4_trace

        trace = tmp_path / "fig4.jsonl"
        trace.write_text(figure4_trace().to_jsonl())
        hist = str(tmp_path / "hist")
        assert main(["analyze", str(trace), "--history", hist]) == 0
        capsys.readouterr()
        assert main(["obs", "suspicion", "--history", hist]) == 1
        assert "no suspicion signals" in capsys.readouterr().err

    def test_history_never_changes_explore_output(self, tmp_path, capsys):
        """The feedback loop is additive: a DFS exploration's stdout is
        byte-identical with and without ``--history``."""
        argv = ["explore", "music-player", "--depth", "1", "--max-runs", "3"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        hist = str(tmp_path / "hist")
        assert main(argv + ["--history", hist]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "history:" in captured.err
