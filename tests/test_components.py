"""Tests for component plumbing: activities via AMS, services,
broadcasts, timers, idle handlers, handlers."""

import pytest

from repro.android import (
    Activity,
    AndroidSystem,
    BroadcastReceiver,
    Ctx,
    Handler,
    Service,
    Timer,
    UIEvent,
    add_idle_handler,
    fork_handler_thread,
)
from repro.core import HappensBefore, detect_races, validate_trace
from repro.core.operations import OpKind


class TestActivityStack:
    class Second(Activity):
        log = []

        def on_create(self, ctx: Ctx) -> None:
            TestActivityStack.Second.log.append("second-created")

    class First(Activity):
        log = []

        def on_create(self, ctx: Ctx) -> None:
            self.register_button(ctx, "go", on_click=self.on_go)

        def on_go(self, ctx: Ctx) -> None:
            self.start_activity(ctx, TestActivityStack.Second)

        def on_stop(self, ctx: Ctx) -> None:
            TestActivityStack.First.log.append("first-stopped")

        def on_restart(self, ctx: Ctx) -> None:
            TestActivityStack.First.log.append("first-restarted")

    def test_start_activity_pauses_launches_stops(self):
        TestActivityStack.First.log.clear()
        TestActivityStack.Second.log.clear()
        system = AndroidSystem(seed=2)
        system.launch(TestActivityStack.First)
        system.run_to_quiescence()
        first = system.screen.foreground
        system.fire(UIEvent("click", "go"))
        system.run_to_quiescence()
        assert TestActivityStack.Second.log == ["second-created"]
        assert TestActivityStack.First.log == ["first-stopped"]
        assert isinstance(system.screen.foreground, TestActivityStack.Second)
        assert len(system.ams.stack) == 2

    def test_back_returns_to_previous_activity(self):
        TestActivityStack.First.log.clear()
        system = AndroidSystem(seed=2)
        system.launch(TestActivityStack.First)
        system.run_to_quiescence()
        system.fire(UIEvent("click", "go"))
        system.run_to_quiescence()
        system.fire(UIEvent("back"))
        system.run_to_quiescence()
        assert "first-restarted" in TestActivityStack.First.log
        assert isinstance(system.screen.foreground, TestActivityStack.First)
        assert len(system.ams.stack) == 1
        trace = system.finish()
        validate_trace(trace)

    def test_programmatic_finish(self):
        class SelfClosing(Activity):
            def on_create(self, ctx: Ctx) -> None:
                self.register_button(ctx, "close", on_click=self.on_close)

            def on_close(self, ctx: Ctx) -> None:
                self.finish(ctx)

        system = AndroidSystem(seed=0)
        system.launch(SelfClosing)
        system.run_to_quiescence()
        system.fire(UIEvent("click", "close"))
        system.run_to_quiescence()
        assert system.screen.foreground is None
        assert system.ams.stack == []


class TestServices:
    class PingService(Service):
        events = []

        def on_create(self, ctx: Ctx) -> None:
            type(self).events.append("create")

        def on_start_command(self, ctx: Ctx, intent) -> None:
            type(self).events.append(("start", intent))

        def on_destroy(self, ctx: Ctx) -> None:
            type(self).events.append("destroy")

    class ServiceHost(Activity):
        def on_resume(self, ctx: Ctx) -> None:
            self.system.start_service(ctx, TestServices.PingService, intent="first")
            self.system.start_service(ctx, TestServices.PingService, intent="again")
            self.system.stop_service(ctx, TestServices.PingService)

    def test_service_lifecycle_sequence(self):
        TestServices.PingService.events = []
        system = AndroidSystem(seed=0)
        system.launch(TestServices.ServiceHost)
        system.run_to_quiescence()
        trace = system.finish()
        validate_trace(trace)
        assert TestServices.PingService.events == [
            "create",
            ("start", "first"),
            ("start", "again"),
            "destroy",
        ]

    def test_service_callbacks_enabled_before_posted(self):
        TestServices.PingService.events = []
        system = AndroidSystem(seed=0)
        system.launch(TestServices.ServiceHost)
        system.run_to_quiescence()
        trace = system.finish()
        hb = HappensBefore(trace)
        posts = [op for op in trace if op.kind is OpKind.POST and op.event]
        svc_posts = [op for op in posts if "Service" in (op.task or "")]
        enables = {op.task: op.index for op in trace if op.kind is OpKind.ENABLE}
        for post_op in svc_posts:
            assert post_op.event in enables
            assert hb.ordered(enables[post_op.event], post_op.index)


class TestBroadcasts:
    class Tick(BroadcastReceiver):
        def __init__(self, system, log):
            super().__init__(system)
            self.log = log

        def on_receive(self, ctx: Ctx, intent) -> None:
            self.log.append(intent)

    class BroadcastHost(Activity):
        received = []

        def on_resume(self, ctx: Ctx) -> None:
            self.receiver = TestBroadcasts.Tick(self.system, type(self).received)
            self.system.register_receiver(ctx, self.receiver, "TICK")
            self.register_button(ctx, "send", on_click=self.on_send)

        def on_send(self, ctx: Ctx) -> None:
            self.system.send_broadcast(ctx, "TICK", intent="payload")

    def test_broadcast_delivery(self):
        TestBroadcasts.BroadcastHost.received = []
        system = AndroidSystem(seed=0)
        system.launch(TestBroadcasts.BroadcastHost)
        system.run_to_quiescence()
        system.fire(UIEvent("click", "send"))
        system.run_to_quiescence()
        assert TestBroadcasts.BroadcastHost.received == ["payload"]
        trace = system.finish()
        validate_trace(trace)

    def test_unregistered_receiver_not_delivered(self):
        TestBroadcasts.BroadcastHost.received = []
        system = AndroidSystem(seed=0)
        system.launch(TestBroadcasts.BroadcastHost)
        system.run_to_quiescence()
        activity = system.screen.foreground
        system.broadcasts.unregister(activity.receiver)
        system.fire(UIEvent("click", "send"))
        system.run_to_quiescence()
        assert TestBroadcasts.BroadcastHost.received == []

    def test_send_returns_receiver_count(self):
        system = AndroidSystem(seed=0)
        system.launch(TestBroadcasts.BroadcastHost)
        system.run_to_quiescence()

        counts = []

        def count_send():
            counts.append(system.send_broadcast(system.env.main_ctx, "TICK"))

        system.env.main.push_action(count_send)
        system.run_to_quiescence()
        assert counts == [1]


class TestTimers:
    class TimerHost(Activity):
        ticks = []

        def on_resume(self, ctx: Ctx) -> None:
            timer = Timer(ctx, name="metronome")
            timer.schedule(self._tick, period=100, runs=3)

        def _tick(self, tctx: Ctx) -> None:
            type(self).ticks.append(tctx.thread.name)

    def test_timer_runs_on_its_own_thread(self):
        TestTimers.TimerHost.ticks = []
        system = AndroidSystem(seed=0)
        system.launch(TestTimers.TimerHost)
        system.run_to_quiescence()
        assert TestTimers.TimerHost.ticks == ["metronome"] * 3
        trace = system.finish()
        validate_trace(trace)
        enables = [op for op in trace if op.kind is OpKind.ENABLE and "timer" in op.task]
        assert len(enables) == 3  # one per periodic execution


class TestIdleHandlers:
    class IdleHost(Activity):
        order = []

        def on_resume(self, ctx: Ctx) -> None:
            add_idle_handler(ctx, self._on_idle, name="warmup")
            ctx.post(self._busy, name="busyTask")

        def _busy(self) -> None:
            type(self).order.append("busy")

        def _on_idle(self) -> None:
            type(self).order.append("idle")

    def test_idle_handler_runs_after_queue_drains(self):
        TestIdleHandlers.IdleHost.order = []
        system = AndroidSystem(seed=0)
        system.launch(TestIdleHandlers.IdleHost)
        system.run_to_quiescence()
        assert TestIdleHandlers.IdleHost.order == ["busy", "idle"]
        trace = system.finish()
        validate_trace(trace)
        idle_posts = [
            op for op in trace if op.kind is OpKind.POST and op.event and "idle" in op.event
        ]
        assert len(idle_posts) == 1


class TestHandlerAPI:
    class HandlerHost(Activity):
        results = []

        def on_resume(self, ctx: Ctx):
            worker = fork_handler_thread(ctx, "handler-worker")
            yield ctx.wait_until(lambda: worker.looping)
            handler = Handler(self.env, worker)
            handler.post(ctx, lambda: type(self).results.append("a"), name="a")
            doomed = handler.post_delayed(
                ctx, lambda: type(self).results.append("zombie"), 500, name="zombie"
            )
            handler.post_delayed(ctx, lambda: type(self).results.append("b"), 100, name="b")
            handler.remove_callbacks(doomed)
            handler.post_at_front_of_queue(
                ctx, lambda: type(self).results.append("front"), name="front"
            )

    def test_handler_post_variants(self):
        TestHandlerAPI.HandlerHost.results = []
        system = AndroidSystem(seed=0)
        system.launch(TestHandlerAPI.HandlerHost)
        system.run_to_quiescence()
        assert TestHandlerAPI.HandlerHost.results == ["front", "a", "b"]
        trace = system.finish()
        validate_trace(trace)
        assert all(op.task != "zombie" for op in trace)
