"""Tests for the ContentProvider/Cursor substrate."""

import pytest

from repro.android import Activity, AndroidSystem, ContentProvider, Ctx, Cursor, CursorIndexError
from repro.android.content_provider import ProviderRegistry
from repro.core import detect_races, validate_trace
from repro.core.operations import OpKind


class TodoProvider(ContentProvider):
    TABLES = ("todos", "tags")


class ProviderHost(Activity):
    def on_create(self, ctx: Ctx) -> None:
        provider = self.system.content_resolver(TodoProvider)
        provider.insert(ctx, "todos", {"title": "a"})
        provider.insert(ctx, "todos", {"title": "b"})


def booted():
    system = AndroidSystem(seed=0)
    system.launch(ProviderHost)
    system.run_to_quiescence()
    return system, system.content_resolver(TodoProvider), system.env.main_ctx


class TestCrud:
    def test_insert_assigns_ids(self):
        system, provider, ctx = booted()
        new_id = provider.insert(ctx, "todos", {"title": "c"})
        assert new_id == 3
        assert provider.count(ctx, "todos") == 3

    def test_query_with_filter(self):
        system, provider, ctx = booted()
        cursor = provider.query(ctx, "todos", where=lambda r: r["title"] == "a")
        assert cursor.count(ctx) == 1

    def test_update(self):
        system, provider, ctx = booted()
        changed = provider.update(
            ctx, "todos", {"done": True}, where=lambda r: r["title"] == "a"
        )
        assert changed == 1
        cursor = provider.query(ctx, "todos", where=lambda r: r.get("done"))
        assert cursor.count(ctx) == 1

    def test_delete(self):
        system, provider, ctx = booted()
        removed = provider.delete(ctx, "todos", where=lambda r: r["title"] == "b")
        assert removed == 1
        assert provider.count(ctx, "todos") == 1

    def test_unknown_table_rejected(self):
        system, provider, ctx = booted()
        with pytest.raises(LookupError):
            provider.query(ctx, "nope")

    def test_registry_one_instance_per_class(self):
        system, provider, ctx = booted()
        assert system.content_resolver(TodoProvider) is provider


class TestInstrumentation:
    def test_query_logs_read_mutation_logs_write(self):
        system, provider, ctx = booted()
        before = len(system.env.ops)
        provider.query(ctx, "todos")
        provider.insert(ctx, "todos", {"title": "x"})
        new_ops = system.env.ops[before:]
        kinds = [op.kind for op in new_ops if op.is_memory_access]
        assert OpKind.READ in kinds and OpKind.WRITE in kinds
        locations = {op.location for op in new_ops if op.is_memory_access}
        assert any(loc.endswith(".todos") for loc in locations)

    def test_table_location_per_provider_instance(self):
        system, provider, ctx = booted()
        assert provider.instance_tag.startswith("TodoProvider@")


class TestCursor:
    def test_navigation(self):
        system, provider, ctx = booted()
        cursor = provider.query(ctx, "todos")
        assert cursor.move_to_first(ctx)
        assert cursor.get(ctx, "title") == "a"
        assert cursor.move_to_next(ctx)
        assert cursor.get(ctx, "title") == "b"
        assert not cursor.move_to_next(ctx)

    def test_out_of_bounds_get_raises(self):
        system, provider, ctx = booted()
        cursor = provider.query(ctx, "todos")
        with pytest.raises(CursorIndexError):
            cursor.get(ctx, "title")  # position -1

    def test_requery_replaces_rows(self):
        system, provider, ctx = booted()
        cursor = provider.query(ctx, "todos")
        cursor.requery(ctx, [{"title": "only"}])
        assert cursor.count(ctx) == 1

    def test_invalidate(self):
        system, provider, ctx = booted()
        cursor = provider.query(ctx, "todos")
        cursor.invalidate(ctx)
        assert cursor.count(ctx) == 0
        assert cursor.obj.raw_read("dataValid") is False

    def test_shrunk_rows_after_positioning_raises(self):
        """The §6 'index out of bounds' shape: position set while rows
        were longer, rows shrink, get() explodes."""
        system, provider, ctx = booted()
        cursor = provider.query(ctx, "todos")
        cursor.move_to_position(ctx, 1)
        cursor.requery(ctx, [{"title": "only"}])
        with pytest.raises(CursorIndexError):
            cursor.get(ctx, "title")


class TestProviderRaces:
    def test_unsynchronized_cross_thread_table_access_races(self):
        class RacyHost(Activity):
            def on_create(self, ctx: Ctx) -> None:
                provider = self.system.content_resolver(TodoProvider)
                provider.insert(ctx, "todos", {"title": "seed"})

            def on_resume(self, ctx: Ctx) -> None:
                provider = self.system.content_resolver(TodoProvider)

                def writer(tctx: Ctx):
                    yield
                    provider.insert(tctx, "todos", {"title": "bg"})

                ctx.fork(writer, name="db-writer")
                self.register_button(ctx, "readBtn", on_click=self.on_read)

            def on_read(self, ctx: Ctx) -> None:
                provider = self.system.content_resolver(TodoProvider)
                provider.query(ctx, "todos")

        from repro.android import UIEvent

        system = AndroidSystem(seed=1)
        system.launch(RacyHost)
        system.run_to_quiescence()
        system.fire(UIEvent("click", "readBtn"))
        system.run_to_quiescence()
        trace = system.finish()
        validate_trace(trace)
        report = detect_races(trace)
        assert any(r.field_name == "TodoProvider.todos" for r in report.races)
