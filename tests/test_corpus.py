"""Tests for the trace corpus subsystem: store, cache, pipeline, report."""

import json

import pytest

from repro.apps.paper_traces import figure4_trace
from repro.core import DetectorConfig, HBConfig, detect_races
from repro.core.operations import (
    attachq,
    begin,
    end,
    looponq,
    post,
    read,
    threadinit,
    write,
)
from repro.core.trace import ExecutionTrace, TraceBuilder, TraceFormatError
from repro.corpus import (
    BatchAnalyzer,
    CorpusError,
    ResultCache,
    TraceStore,
    aggregate,
    app_of_trace_name,
)


def small_trace(name="small", location="Obj@1.field"):
    b = TraceBuilder(name)
    b.extend(
        [
            threadinit("t0"),
            attachq("t0"),
            looponq("t0"),
            post("t0", "p1", "t0"),
            post("t0", "p2", "t0"),
            begin("t0", "p1"),
            write("t0", location),
            end("t0", "p1"),
            begin("t0", "p2"),
            write("t0", location),
            end("t0", "p2"),
        ]
    )
    return b.build()


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "corpus")


class TestDigest:
    def test_digest_ignores_trace_name(self):
        assert (
            small_trace("a").canonical_digest() == small_trace("b").canonical_digest()
        )

    def test_digest_is_content_sensitive(self):
        assert (
            small_trace(location="X@1.f").canonical_digest()
            != small_trace(location="X@1.g").canonical_digest()
        )

    def test_digest_stable_across_serialization(self):
        trace = figure4_trace()
        again = ExecutionTrace.from_jsonl(trace.to_jsonl())
        assert trace.canonical_digest() == again.canonical_digest()


class TestTraceStore:
    def test_ingest_trace_object(self, store):
        (entry,) = store.ingest(small_trace())
        assert entry.digest == small_trace().canonical_digest()
        assert entry.name == "small"
        assert entry.length == 11 and entry.threads == 1 and entry.tasks == 2

    def test_ingest_is_idempotent(self, store):
        store.ingest(small_trace())
        store.ingest(small_trace("renamed"))  # same content
        assert len(store) == 1

    def test_ingest_file_and_directory(self, store, tmp_path):
        d = tmp_path / "traces"
        d.mkdir()
        (d / "one.jsonl").write_text(small_trace().to_jsonl())
        (d / "two.jsonl").write_text(small_trace(location="Y@1.f").to_jsonl())
        entries = store.ingest(d)
        assert len(entries) == 2 and len(store) == 2
        assert {e.name for e in entries} == {"one", "two"}

    def test_ingest_empty_directory_rejected(self, store, tmp_path):
        with pytest.raises(CorpusError):
            store.ingest(tmp_path)

    def test_roundtrip_through_disk(self, store):
        trace = figure4_trace()
        (entry,) = store.ingest(trace, app="figure4")
        loaded = store.load(entry.digest)
        assert loaded.to_jsonl() == trace.to_jsonl()
        assert loaded.name == trace.name

    def test_manifest_survives_reopen(self, store):
        (entry,) = store.ingest(small_trace(), app="demo")
        reopened = TraceStore(store.root)
        assert len(reopened) == 1
        assert reopened.get(entry.digest).app == "demo"

    def test_unknown_digest(self, store):
        with pytest.raises(CorpusError):
            store.get("deadbeef")

    def test_app_attribution_from_trace_name(self):
        assert app_of_trace_name("music-player[back,click:x]") == "music-player"
        assert app_of_trace_name("plain") == "plain"


class TestStrictLoading:
    def test_missing_kind_names_line(self):
        text = '{"kind": "threadinit", "thread": "t0"}\n{"thread": "t0"}\n'
        with pytest.raises(TraceFormatError, match="line 2.*missing the 'kind'"):
            ExecutionTrace.from_jsonl(text)

    def test_unknown_kind_names_line(self):
        text = '{"kind": "warp", "thread": "t0"}\n'
        with pytest.raises(TraceFormatError, match="line 1.*unknown op kind 'warp'"):
            ExecutionTrace.from_jsonl(text)

    def test_missing_thread_and_bad_json(self):
        with pytest.raises(TraceFormatError, match="line 1.*missing the 'thread'"):
            ExecutionTrace.from_jsonl('{"kind": "threadinit"}\n')
        with pytest.raises(TraceFormatError, match="line 1.*invalid JSON"):
            ExecutionTrace.from_jsonl("not json\n")

    def test_unexpected_field_reported(self):
        text = '{"kind": "threadinit", "thread": "t0", "bogus": 1}\n'
        with pytest.raises(TraceFormatError, match="line 1"):
            ExecutionTrace.from_jsonl(text)

    def test_lenient_mode_skips_bad_lines(self):
        good = small_trace().to_jsonl()
        text = good + '{"thread": "t0"}\nnot json\n'
        with pytest.warns(UserWarning, match="skipping bad trace record"):
            trace = ExecutionTrace.from_jsonl(text, strict=False)
        assert len(trace) == len(small_trace())

    def test_streaming_load_from_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(small_trace().to_jsonl())
        trace = ExecutionTrace.load(path)
        assert len(trace) == len(small_trace())


class TestDetectorConfig:
    def test_digest_changes_with_rules(self):
        base = DetectorConfig()
        assert base.digest() == DetectorConfig().digest()
        assert base.digest() != DetectorConfig(coalesce=False).digest()
        assert base.digest() != DetectorConfig(hb=HBConfig(fifo=False)).digest()
        assert base.digest() != DetectorConfig(cancelled_tasks=("p1",)).digest()

    def test_build_detector_matches_detect_races(self):
        trace = figure4_trace()
        report = DetectorConfig().build_detector(trace).detect()
        expected = detect_races(trace)
        assert [r.to_dict() for r in report.races] == [
            r.to_dict() for r in expected.races
        ]


class TestReportSerialization:
    def test_report_roundtrip(self):
        report = detect_races(figure4_trace())
        again = type(report).from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()
        assert [str(r) for r in again.races] == [str(r) for r in report.races]


class TestResultCache:
    def test_second_pass_hits(self, store, tmp_path):
        store.ingest(figure4_trace())
        store.ingest(small_trace())
        cache = ResultCache(store.root)
        analyzer = BatchAnalyzer(store, cache=cache, jobs=1)
        cold = analyzer.analyze()
        warm = analyzer.analyze()
        assert cold.cache_hits == 0 and cold.cache_misses == 2
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert [r.report.to_dict()["races"] for r in warm.results] == [
            r.report.to_dict()["races"] for r in cold.results
        ]

    def test_config_change_invalidates(self, store):
        store.ingest(figure4_trace())
        cache = ResultCache(store.root)
        BatchAnalyzer(store, cache=cache, jobs=1).analyze()
        other = DetectorConfig(hb=HBConfig(fifo=False, nopre=False))
        batch = BatchAnalyzer(store, cache=cache, config=other, jobs=1).analyze()
        assert batch.cache_hits == 0 and batch.cache_misses == 1

    def test_corrupt_entry_is_a_miss(self, store):
        (entry,) = store.ingest(figure4_trace())
        cache = ResultCache(store.root)
        analyzer = BatchAnalyzer(store, cache=cache, jobs=1)
        analyzer.analyze()
        config_digest = analyzer.config.digest()
        cache.path_for(entry.digest, config_digest).write_text("{broken")
        batch = analyzer.analyze()
        assert batch.cache_misses == 1 and not batch.errors()
        # and the entry was repaired:
        assert cache.get(entry.digest, config_digest) is not None

    def test_clear(self, store):
        store.ingest(figure4_trace())
        cache = ResultCache(store.root)
        BatchAnalyzer(store, cache=cache, jobs=1).analyze()
        assert cache.clear() == 1
        assert cache.clear() == 0


class TestPipeline:
    def corpus(self, store, n=6):
        for i in range(n):
            store.ingest(small_trace("t%d" % i, location="Obj@%d.field" % i))
        store.ingest(figure4_trace())

    def test_parallel_equals_serial(self, store):
        self.corpus(store)
        serial = BatchAnalyzer(store, jobs=1).analyze()
        parallel = BatchAnalyzer(store, jobs=2).analyze()
        assert parallel.parallel and not serial.parallel
        assert [r.entry.digest for r in serial.results] == [
            r.entry.digest for r in parallel.results
        ]
        assert [
            [race.to_dict() for race in r.report.races] for r in serial.results
        ] == [[race.to_dict() for race in r.report.races] for r in parallel.results]

    def test_error_isolation(self, store):
        self.corpus(store, n=2)
        victim = store.entries()[0]
        store.path_for(victim.digest).write_text('{"thread": "t0"}\n')
        batch = BatchAnalyzer(store, jobs=1).analyze()
        failures = batch.errors()
        assert len(failures) == 1
        assert failures[0].entry.digest == victim.digest
        assert "line 1" in failures[0].error
        assert len(batch.ok()) == len(store) - 1

    def test_jobs_one_or_single_trace_stays_serial(self, store):
        store.ingest(figure4_trace())
        batch = BatchAnalyzer(store, jobs=4).analyze()
        assert not batch.parallel  # one trace — no pool spin-up
        assert len(batch.ok()) == 1

    def test_analyze_subset_by_digest(self, store):
        self.corpus(store, n=3)
        digests = [e.digest for e in store.entries()[:2]]
        batch = BatchAnalyzer(store, jobs=1).analyze(digests)
        assert [r.entry.digest for r in batch.results] == digests


class TestAggregation:
    def test_dedup_across_traces(self, store):
        # Same racy location+category in two different traces of one app.
        store.ingest(small_trace("a"), app="demo")
        b = TraceBuilder("b")
        b.extend(
            [
                threadinit("t0"),
                attachq("t0"),
                looponq("t0"),
                post("t0", "q1", "t0"),
                post("t0", "q2", "t0"),
                begin("t0", "q1"),
                write("t0", "Obj@1.field"),
                read("t0", "Other@1.x"),
                end("t0", "q1"),
                begin("t0", "q2"),
                write("t0", "Obj@1.field"),
                end("t0", "q2"),
            ]
        )
        store.ingest(b.build(), app="demo")
        batch = BatchAnalyzer(store, jobs=1).analyze()
        report = aggregate(batch)
        assert report.traces_total == 2
        merged = [r for r in report.races if r.location == "Obj@1.field"]
        assert len(merged) == 1 and merged[0].trace_count == 2
        assert merged[0].apps == ("demo",)
        total = sum(report.per_app["demo"].values())
        assert total == len(report.races)

    def test_render_and_json(self, store):
        store.ingest(figure4_trace(), app="figure4")
        batch = BatchAnalyzer(store, jobs=1).analyze()
        report = aggregate(batch)
        text = report.render()
        assert "figure4" in text and "Total" in text
        data = report.to_dict()
        assert data["traces_total"] == 1
        assert data["distinct_races"] == len(report.races)
        json.dumps(data)  # must be JSON-serializable

    def test_errors_surface_in_report(self, store):
        (entry,) = store.ingest(small_trace())
        store.path_for(entry.digest).write_text("garbage\n")
        report = aggregate(BatchAnalyzer(store, jobs=1).analyze())
        assert report.traces_failed == 1
        assert report.errors and report.errors[0][0] == entry.name
        assert "failed" in report.render()


class TestExplorerIngestHook:
    def test_explorer_feeds_store(self, tmp_path):
        from repro.apps.registry import demo_app
        from repro.explorer import UIExplorer

        store = TraceStore(tmp_path / "corpus")
        explorer = UIExplorer(
            demo_app("music-player"), depth=1, max_runs=3, trace_store=store
        )
        result = explorer.explore()
        assert len(store) > 0
        assert all(entry.app == "music-player" for entry in store)
        # ingest_into is idempotent with the live hook (same digests).
        before = len(store)
        result.ingest_into(store)
        assert len(store) == before


class TestSequenceStorePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.explorer import SequenceStore

        store = SequenceStore()
        store.record(["a", "b"], trace=None, decisions=["d1"], enabled_after=["c"])
        store.record([], trace=None)
        path = tmp_path / "sequences.jsonl"
        store.save(path)
        loaded = SequenceStore.load(path)
        assert len(loaded) == 2
        assert loaded.explored(["a", "b"]) and loaded.explored([])
        run = loaded.lookup(["a", "b"])
        assert run.decisions == ("d1",) and run.enabled_after == ("c",)
