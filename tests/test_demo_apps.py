"""Integration tests for the hand-written application models: each app
reproduces its §6 finding, including the documented false-negative and
false-positive mechanisms."""

import pytest

from repro.android import AndroidSystem, UIEvent
from repro.apps.browser_app import BrowserApp
from repro.apps.dictionary_app import DictionaryApp, DictionaryService, LookupActivity
from repro.apps.messenger_app import ConversationActivity, MessengerApp
from repro.core import RaceCategory, detect_races, validate_trace
from repro.explorer import UIExplorer


def run_events(app, events, seed=0):
    system = app.build(seed)
    system.run_to_quiescence()
    for event in events:
        system.fire(event)
        system.run_to_quiescence()
    trace = system.finish()
    return system, trace


def run_events_eagerly(app, events, seed=0):
    """Fire the events as soon as the UI is up, while background work from
    the launch is still in flight — the adversarial interleaving the §6
    debugger sessions constructed by stalling threads."""
    system = app.build(seed)
    system.env.run_until(lambda: system.screen.foreground is not None)
    for event in events:
        system.fire(event)
    system.run_to_quiescence()
    trace = system.finish()
    return system, trace


class TestDictionaryApp:
    def test_service_race_detected(self):
        """The Aard Dictionary finding: a multithreaded race on the
        dictionary-loading Service object."""
        system, trace = run_events(DictionaryApp(), [UIEvent("click", "lookupBtn")])
        validate_trace(trace)
        report = detect_races(trace)
        service_races = [
            r
            for r in report.races
            if r.field_name.startswith("DictionaryService.")
            and r.category is RaceCategory.MULTITHREADED
        ]
        assert service_races, report.summary()

    def test_bad_behaviour_reproducible(self):
        """§6: 'This temporarily permitted the background thread to access
        the (empty) dictionaries even before they were loaded' — some
        schedule exhibits the miss, another the hit."""
        outcomes = set()
        for seed in range(16):
            for runner in (run_events, run_events_eagerly):
                system, _ = runner(
                    DictionaryApp(), [UIEvent("click", "lookupBtn")], seed=seed
                )
                activity = next(
                    r.activity for r in system.ams.stack + system.ams.destroyed_records
                    if isinstance(r.activity, LookupActivity)
                )
                outcomes.update(kind for kind, _ in activity.results)
        assert "hit" in outcomes and "miss" in outcomes, outcomes


class TestMessengerApp:
    def test_cursor_race_cross_posted(self):
        system, trace = run_events(MessengerApp(), [UIEvent("click", "deleteBtn")])
        validate_trace(trace)
        report = detect_races(trace)
        cursor_races = [
            r for r in report.races if r.field_name == "ConversationActivity.rows"
        ]
        assert cursor_races
        assert cursor_races[0].category is RaceCategory.CROSS_POSTED

    def test_index_out_of_bounds_on_some_schedule(self):
        """Reordering the delete and the cursor update produces the
        'index out of bounds' bad behaviour."""
        crashes = []
        for seed in range(16):
            system, _ = run_events_eagerly(
                MessengerApp(), [UIEvent("click", "deleteBtn")], seed=seed
            )
            activity = system.ams.stack[0].activity if system.ams.stack else None
            if activity and activity.crashes:
                crashes.extend(activity.crashes)
        assert any("IndexOutOfBounds" in c for c in crashes), crashes

    def test_custom_queue_race_is_a_false_negative(self):
        """The two draft runnables genuinely race (either may run first on
        the custom-queue thread) but NO-Q-PO orders them — DroidRacer's
        documented false negative, faithfully reproduced."""
        system, trace = run_events(MessengerApp(), [])
        report = detect_races(trace)
        draft_races = [
            r for r in report.races if r.field_name == "ConversationActivity.draft"
        ]
        assert draft_races == []
        # ...yet the accesses really happen on the custom queue thread in
        # submission-dependent order: both writes exist in the trace.
        draft_writes = [
            op
            for op in trace
            if op.is_write and op.location.endswith(".draft")
        ]
        assert len(draft_writes) == 2
        assert all(op.thread == "custom-queue" for op in draft_writes)


class TestBrowserApp:
    def test_untracked_posts_cause_false_positives(self):
        system, trace = run_events(BrowserApp(), [UIEvent("click", "loadBtn")])
        validate_trace(trace)
        report = detect_races(trace)
        by_field = {r.field_name: r.category for r in report.races}
        # False positives from the untracked native renderer:
        assert "BrowserActivity.url" in by_field
        assert by_field["BrowserActivity.url"] is RaceCategory.CROSS_POSTED
        assert "BrowserActivity.progress" in by_field
        # The one genuine race (favicon prefetch vs renderer):
        assert "BrowserActivity.favicon" in by_field
        assert by_field["BrowserActivity.favicon"] is RaceCategory.MULTITHREADED

    def test_no_fork_op_for_native_thread(self):
        from repro.core.operations import OpKind

        system, trace = run_events(BrowserApp(), [UIEvent("click", "loadBtn")])
        fork_targets = {op.target for op in trace if op.kind is OpKind.FORK}
        native = [t for t in trace.threads if t.startswith("native-render")]
        assert native and not (set(native) & fork_targets)


class TestMusicPlayerAssertions:
    def test_assertions_hold_in_observed_schedules(self):
        """In the traced schedules the assertions hold (the race is latent;
        §6 exercised it with a debugger — we exercise it by construction in
        the HB analysis instead)."""
        from repro.apps.music_player import run_scenario

        for seed in range(4):
            system, trace = run_scenario(press_back=True, seed=seed)
            activity = system.ams.destroyed_records[0].activity
            assert all(activity.background_assertions)
