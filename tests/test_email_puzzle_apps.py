"""Integration tests for the email (K-9-like) and puzzle (SGTPuzzles-like)
application models."""

import pytest

from repro.android import UIEvent, get_shared_preferences
from repro.apps.email_app import EmailApp, MailProvider
from repro.apps.puzzle_app import PuzzleApp
from repro.core import RaceCategory, detect_races, validate_trace
from repro.explorer import ScheduleExplorer, find_event


def run(app, keys, seed=1):
    system = app.build(seed)
    system.run_to_quiescence()
    for key in keys:
        event = find_event(system.enabled_events(), key)
        assert event is not None, (key, [e.describe() for e in system.enabled_events()])
        system.fire(event)
        system.run_to_quiescence()
    return system, system.finish()


class TestEmailApp:
    def test_sync_creates_one_task_per_folder(self):
        system, trace = run(EmailApp(), ["click:syncBtn"])
        validate_trace(trace)
        syncs = [
            name for name in trace.tasks if name.startswith("FolderSync")
        ]
        # onProgressUpdate + onPostExecute per folder, at least.
        assert len([n for n in syncs if "onPostExecute" in n]) == 3

    def test_unread_badge_race_multithreaded(self):
        system, trace = run(EmailApp(), ["click:syncBtn", "click:markReadBtn"])
        report = detect_races(trace)
        badge = [r for r in report.races if r.field_name == "MailboxActivity.unread"]
        assert badge
        assert any(r.category is RaceCategory.MULTITHREADED for r in badge)

    def test_badge_race_validates_dynamically(self):
        explorer = ScheduleExplorer(
            EmailApp(), events=["click:syncBtn", "click:markReadBtn"], seeds=range(10)
        )
        result = explorer.validate_field_adversarially("MailboxActivity.unread")
        assert result.validated

    def test_messages_inserted_into_provider(self):
        system, trace = run(EmailApp(), ["click:syncBtn"])
        provider = system.content_resolver(MailProvider)
        assert len(provider._data["messages"]) == 6  # 2 per folder

    def test_idle_prefetch_ran(self):
        system, trace = run(EmailApp(), [])
        activity = system.ams.stack[0].activity
        assert activity.prefetched

    def test_signature_preferences(self):
        system, trace = run(EmailApp(), ["click:signatureBtn"])
        prefs = get_shared_preferences(system, "mail")
        assert prefs._values["signature"] == "brief"


class TestPuzzleApp:
    def test_solver_races_with_moves(self):
        system, trace = run(PuzzleApp(), ["click:moveBtn"])
        validate_trace(trace)
        report = detect_races(trace)
        fields = {r.field_name for r in report.races}
        assert "PuzzleActivity.board" in fields or "PuzzleActivity.selection" in fields
        assert any(not r.is_single_threaded for r in report.races)

    def test_untracked_renderer_produces_report(self):
        system, trace = run(PuzzleApp(), ["click:newGameBtn"])
        report = detect_races(trace)
        assert any(r.field_name == "PuzzleActivity.frameBuffer" for r in report.races)

    def test_renderer_report_is_unconfirmable(self):
        explorer = ScheduleExplorer(
            PuzzleApp(), events=["click:newGameBtn"], seeds=range(8)
        )
        result = explorer.validate_field_adversarially("PuzzleActivity.frameBuffer")
        assert not result.validated  # causally fixed: false positive

    def test_solver_race_validates(self):
        explorer = ScheduleExplorer(
            PuzzleApp(), events=["click:moveBtn"], seeds=range(10)
        )
        result = explorer.validate_field_adversarially("PuzzleActivity.selection")
        assert result.validated

    def test_delayed_redraws_run_in_order(self):
        system, trace = run(PuzzleApp(), [])
        ticks = [
            info
            for name, info in trace.tasks.items()
            if name.startswith("redrawTick")
        ]
        assert len(ticks) == 2
        assert all(info.is_delayed for info in ticks)
