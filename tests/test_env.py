"""Tests for the simulated runtime environment: scheduling, threads,
locks, joins, blocking commands, crash handling, determinism."""

import pytest

from repro.android import (
    AndroidEnv,
    Ctx,
    DeadlockError,
    PendingCommandError,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    SchedulerError,
    SharedObject,
    ThreadAPIError,
    ThreadState,
    looper_entry,
)
from repro.android.errors import AppCrashError
from repro.core import validate_trace
from repro.core.operations import OpKind


def fresh_env(seed=0):
    return AndroidEnv(RandomPolicy(seed), name="test")


class TestBootstrap:
    def test_main_thread_attaches_and_loops(self):
        env = fresh_env()
        env.run()
        assert env.main.looping
        kinds = [op.kind for op in env.ops]
        assert kinds[:3] == [OpKind.THREAD_INIT, OpKind.ATTACH_Q, OpKind.LOOP_ON_Q]

    def test_build_trace_validates(self):
        env = fresh_env()
        env.run()
        env.shutdown()
        validate_trace(env.build_trace())

    def test_shutdown_exits_idle_threads(self):
        env = fresh_env()
        env.run()
        env.shutdown()
        assert env.main.state is ThreadState.FINISHED
        assert env.ops[-1].kind is OpKind.THREAD_EXIT


class TestForkAndJoin:
    def test_forked_thread_runs_entry(self):
        env = fresh_env()
        obj = SharedObject(env, "O")
        done = []

        def child(ctx: Ctx):
            ctx.write(obj, "x", 1)
            done.append(True)

        env.main.push_action(lambda: env.ctx(env.main).fork(child, name="kid"))
        env.run()
        assert done == [True]
        kid = env.threads["kid"]
        assert kid.state is ThreadState.FINISHED

    def test_join_waits_for_child(self):
        env = fresh_env()
        order = []

        def child(ctx: Ctx):
            yield
            order.append("child-done")

        def parent_work():
            ctx = env.current_ctx
            kid = ctx.fork(child, name="kid")

            def joiner(jctx: Ctx):
                yield jctx.join(kid)
                order.append("joined")

            ctx.fork(joiner, name="joiner")

        env.main.push_action(parent_work)
        env.run()
        assert order == ["child-done", "joined"]

    def test_untracked_fork_not_logged(self):
        env = fresh_env()

        def child(ctx: Ctx):
            pass

        env.main.push_action(
            lambda: env.ctx(env.main).fork(child, name="ghost", untracked=True)
        )
        env.run()
        forks = [op for op in env.ops if op.kind is OpKind.FORK]
        assert forks == []
        inits = [op for op in env.ops if op.kind is OpKind.THREAD_INIT]
        assert any(op.thread == "ghost" for op in inits)

    def test_duplicate_fork_names_uniquified(self):
        env = fresh_env()

        def spawn_twice():
            ctx = env.current_ctx
            a = ctx.fork(lambda c: None, name="twin")
            b = ctx.fork(lambda c: None, name="twin")
            assert a.name != b.name

        env.main.push_action(spawn_twice)
        env.run()


class TestLocks:
    def test_blocking_acquire_waits_for_holder(self):
        env = fresh_env(seed=3)
        lock = env.new_lock("L")
        order = []

        def holder(ctx: Ctx):
            yield ctx.acquire(lock)
            order.append("holder-in")
            yield
            yield
            ctx.release(lock)
            order.append("holder-out")

        def waiter(ctx: Ctx):
            yield ctx.acquire(lock)
            order.append("waiter-in")
            ctx.release(lock)

        def setup():
            ctx = env.current_ctx
            ctx.fork(holder, name="a-holder")  # name order: scheduled first
            ctx.fork(waiter, name="b-waiter")

        env.main.push_action(setup)
        env.run()
        assert order.index("holder-out") < order.index("waiter-in")
        assert order[0] == "holder-in"

    def test_reentrant_acquire(self):
        env = fresh_env()
        lock = env.new_lock("L")

        def worker(ctx: Ctx):
            yield ctx.acquire(lock)
            yield ctx.acquire(lock)
            ctx.release(lock)
            ctx.release(lock)

        env.main.push_action(lambda: env.current_ctx.fork(worker, name="w"))
        env.run()
        ops = [op.kind for op in env.ops if op.kind in (OpKind.ACQUIRE, OpKind.RELEASE)]
        assert ops == [OpKind.ACQUIRE, OpKind.ACQUIRE, OpKind.RELEASE, OpKind.RELEASE]

    def test_release_without_hold_raises(self):
        env = fresh_env()
        lock = env.new_lock("L")

        def worker(ctx: Ctx):
            ctx.release(lock)

        env.main.push_action(lambda: env.current_ctx.fork(worker, name="w"))
        with pytest.raises(AppCrashError):
            env.run()

    def test_deadlock_detected(self):
        env = fresh_env(seed=1)
        l1, l2 = env.new_lock("L1"), env.new_lock("L2")
        holding = {"w1": False, "w2": False}

        def worker(first, second, me):
            def body(ctx: Ctx):
                yield ctx.acquire(first)
                holding[me] = True
                # Barrier: both workers hold their first lock before either
                # requests its second — the classic ABBA deadlock.
                yield ctx.wait_until(lambda: all(holding.values()))
                yield ctx.acquire(second)
                ctx.release(second)
                ctx.release(first)

            return body

        def setup():
            ctx = env.current_ctx
            ctx.fork(worker(l1, l2, "w1"), name="w1")
            ctx.fork(worker(l2, l1, "w2"), name="w2")

        env.main.push_action(setup)
        with pytest.raises(DeadlockError):
            env.run()

    def test_exit_holding_lock_raises(self):
        env = fresh_env()
        lock = env.new_lock("L")

        def worker(ctx: Ctx):
            yield ctx.acquire(lock)
            # exits without releasing

        env.main.push_action(lambda: env.current_ctx.fork(worker, name="w"))
        with pytest.raises(ThreadAPIError):
            env.run()

    def test_unyielded_command_detected(self):
        env = fresh_env()
        lock = env.new_lock("L")

        def worker(ctx: Ctx):
            ctx.acquire(lock)  # missing yield!
            ctx.acquire(lock)
            yield

        env.main.push_action(lambda: env.current_ctx.fork(worker, name="w"))
        with pytest.raises(AppCrashError) as info:
            env.run()
        assert isinstance(info.value.original, PendingCommandError)


class TestPosting:
    def test_post_runs_on_target(self):
        env = fresh_env()
        ran = []
        env.main.push_action(
            lambda: env.post_message(
                env.main, env.main, lambda: ran.append(env._current.name), "task"
            )
        )
        env.run()
        assert ran == ["main"]

    def test_post_to_thread_without_queue_raises(self):
        env = fresh_env()

        def bad():
            plain = env.current_ctx.fork(lambda c: None, name="plain")
            env.post_message(env.main, plain, lambda: None, "task")

        # Actions are framework code: the error propagates undecorated.
        env.main.push_action(bad)
        with pytest.raises(ThreadAPIError, match="no task queue"):
            env.run()

    def test_task_instance_names_unique(self):
        env = fresh_env()

        def post_twice():
            env.post_message(env.main, env.main, lambda: None, "job")
            env.post_message(env.main, env.main, lambda: None, "job")

        env.main.push_action(post_twice)
        env.run()
        posts = [op.task for op in env.ops if op.kind is OpKind.POST]
        assert posts == ["job", "job#2"]

    def test_cancelled_message_never_runs_and_post_removed(self):
        env = fresh_env()
        ran = []

        def post_and_cancel():
            msg = env.post_message(env.main, env.main, lambda: ran.append(1), "doomed")
            assert env.cancel_message(msg)

        env.main.push_action(post_and_cancel)
        env.run()
        env.shutdown()
        assert ran == []
        trace = env.build_trace()
        assert all(op.task != "doomed" for op in trace)

    def test_cancel_after_dispatch_fails(self):
        env = fresh_env()
        holder = {}

        def post_it():
            holder["msg"] = env.post_message(env.main, env.main, lambda: None, "quick")

        env.main.push_action(post_it)
        env.run()
        assert not env.cancel_message(holder["msg"])


class TestDelayedPosts:
    def test_virtual_clock_advances_for_delayed_messages(self):
        env = fresh_env()
        order = []

        def setup():
            env.post_message(env.main, env.main, lambda: order.append("slow"), "slow", delay=100)
            env.post_message(env.main, env.main, lambda: order.append("fast"), "fast")

        env.main.push_action(setup)
        env.run()
        assert order == ["fast", "slow"]
        assert env.clock >= 100

    def test_delay_ordering_among_delayed(self):
        env = fresh_env()
        order = []

        def setup():
            env.post_message(env.main, env.main, lambda: order.append("c"), "c", delay=300)
            env.post_message(env.main, env.main, lambda: order.append("a"), "a", delay=10)
            env.post_message(env.main, env.main, lambda: order.append("b"), "b", delay=20)

        env.main.push_action(setup)
        env.run()
        assert order == ["a", "b", "c"]

    def test_at_front_post_barges(self):
        env = fresh_env()
        order = []

        def setup():
            env.post_message(env.main, env.main, lambda: order.append("first"), "first")
            env.post_message(
                env.main, env.main, lambda: order.append("urgent"), "urgent", at_front=True
            )

        env.main.push_action(setup)
        env.run()
        assert order == ["urgent", "first"]


class TestCrash:
    def test_app_exception_wrapped_with_context(self):
        env = fresh_env()

        def boom():
            raise ValueError("kaboom")

        env.main.push_action(lambda: env.post_message(env.main, env.main, boom, "boom"))
        with pytest.raises(AppCrashError) as info:
            env.run()
        assert info.value.thread == "main"
        assert info.value.task == "boom"
        assert isinstance(info.value.original, ValueError)


class TestDeterminism:
    def _run_once(self, seed):
        env = AndroidEnv(RandomPolicy(seed), name="det")
        obj = SharedObject(env, "O")

        def setup():
            ctx = env.current_ctx
            for i in range(3):
                ctx.fork(self._worker(obj, i), name="w%d" % i)
            env.post_message(env.main, env.main, lambda: None, "tick")

        env.main.push_action(setup)
        env.run()
        env.shutdown()
        return env

    @staticmethod
    def _worker(obj, i):
        def body(ctx: Ctx):
            ctx.write(obj, "f%d" % i, 0)
            yield
            ctx.write(obj, "f%d" % i, 1)

        return body

    def test_same_seed_same_trace(self):
        a, b = self._run_once(42), self._run_once(42)
        assert [op.render() for op in a.ops] == [op.render() for op in b.ops]

    def test_different_seed_may_differ_but_valid(self):
        a = self._run_once(1)
        validate_trace(a.build_trace())

    def test_replay_policy_reproduces_run(self):
        original = self._run_once(7)
        env = AndroidEnv(ReplayPolicy(original.decisions), name="det")
        obj = SharedObject(env, "O")

        def setup():
            ctx = env.current_ctx
            for i in range(3):
                ctx.fork(self._worker(obj, i), name="w%d" % i)
            env.post_message(env.main, env.main, lambda: None, "tick")

        env.main.push_action(setup)
        env.run()
        env.shutdown()
        assert [op.render() for op in env.ops] == [op.render() for op in original.ops]


class TestPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        picks = [policy.choose(["a", "b", "c"]) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_random_policy_reset(self):
        policy = RandomPolicy(5)
        first = [policy.choose(["a", "b", "c"]) for _ in range(10)]
        policy.reset()
        second = [policy.choose(["a", "b", "c"]) for _ in range(10)]
        assert first == second

    def test_replay_policy_skips_stale_picks(self):
        policy = ReplayPolicy(["x", "a"])
        assert policy.choose(["a", "b"]) == "a"  # "x" skipped
        assert policy.choose(["a", "b"]) == "a"  # exhausted -> first ready

    def test_run_until_raises_when_quiescent(self):
        env = fresh_env()
        with pytest.raises(SchedulerError):
            env.run_until(lambda: False, max_steps=1000)

    def test_runaway_guard(self):
        env = fresh_env()

        def spinner(ctx: Ctx):
            while True:
                yield

        env.main.push_action(lambda: env.current_ctx.fork(spinner, name="spin"))
        with pytest.raises(SchedulerError, match="runaway"):
            env.run(max_steps=500)
