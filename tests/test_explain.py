"""Tests for race explanation and HB witnesses (debugging support)."""

import pytest

from repro.apps.paper_traces import (
    FIGURE4_POSITIONS,
    figure3_trace,
    figure4_trace,
)
from repro.core import (
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    HappensBefore,
    SAT_FULL,
    SAT_INCREMENTAL,
    detect_races,
)
from repro.core.classification import RaceCategory
from repro.core.explain import explain_race, hb_witness, render_witness


@pytest.fixture(scope="module")
def fig4_analysis():
    trace = figure4_trace()
    report = detect_races(trace)
    from repro.core.race_detector import RaceDetector

    detector = RaceDetector(trace)
    report = detector.detect()
    return trace, detector.hb, report


class TestExplanations:
    def test_multithreaded_explanation(self, fig4_analysis):
        trace, hb, report = fig4_analysis
        race = next(r for r in report.races if r.category is RaceCategory.MULTITHREADED)
        explanation = explain_race(trace, hb, race)
        text = explanation.render()
        assert "different threads" in text
        assert "t2" in text and "t1" in text
        assert "LOCK" in text or "JOIN" in text  # near-miss suggestions

    def test_cross_posted_explanation_shows_chains(self, fig4_analysis):
        trace, hb, report = fig4_analysis
        race = next(r for r in report.races if r.category is RaceCategory.CROSS_POSTED)
        explanation = explain_race(trace, hb, race)
        assert explanation.chain_i, "the onPostExecute access has a post chain"
        assert any("t2 posts onPostExecute" in s.describe() for s in explanation.chain_i)
        text = explanation.render()
        assert "post chain" in text
        assert "posted from another thread" in text

    def test_co_enabled_explanation(self):
        from repro.core.operations import (
            attachq, begin, enable, end, looponq, post, threadinit, write,
        )
        from repro.core.race_detector import RaceDetector
        from repro.core.trace import ExecutionTrace

        trace = ExecutionTrace(
            [
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                enable("t", "click:a"),
                enable("t", "click:b"),
                post("t", "onA", "t", event="click:a"),
                post("t", "onB", "t", event="click:b"),
                begin("t", "onA"),
                write("t", "x"),
                end("t", "onA"),
                begin("t", "onB"),
                write("t", "x"),
                end("t", "onB"),
            ]
        )
        detector = RaceDetector(trace)
        report = detector.detect()
        (race,) = report.races
        text = explain_race(trace, detector.hb, race).render()
        assert "co-enabled" in text
        assert "click:a" in text and "click:b" in text

    def test_delayed_explanation_mentions_delays(self):
        from repro.core.operations import (
            attachq, begin, end, looponq, post, threadinit, write,
        )
        from repro.core.race_detector import RaceDetector
        from repro.core.trace import ExecutionTrace

        trace = ExecutionTrace(
            [
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                post("t", "slow", "t", delay=100),
                post("t", "fast", "t"),
                begin("t", "fast"),
                write("t", "x"),
                end("t", "fast"),
                begin("t", "slow"),
                write("t", "x"),
                end("t", "slow"),
            ]
        )
        detector = RaceDetector(trace)
        report = detector.detect()
        (race,) = report.races
        text = explain_race(trace, detector.hb, race).render()
        assert "delay 100ms" in text
        assert "timing constraints" in text


class TestWitness:
    def test_witness_for_ordered_pair(self):
        trace = figure3_trace()
        hb = HappensBefore(trace)
        # write in LAUNCH (7) is ordered before read in onPostExecute (16).
        path = hb_witness(hb, 7, 16)
        assert path is not None
        assert path[0] == 7 and path[-1] == 16
        # Every adjacent step on the path is itself an HB fact.
        for a, b in zip(path, path[1:]):
            assert hb.ordered(a, b)
        rendered = render_witness(trace, path)
        assert "op    7" in rendered and "≺" in rendered

    def test_no_witness_for_racy_pair(self, fig4_analysis):
        trace, hb, report = fig4_analysis
        q = FIGURE4_POSITIONS
        assert hb_witness(hb, q["read_background"], q["write_destroy"]) is None

    def test_same_node_witness(self):
        trace = figure3_trace()
        hb = HappensBefore(trace)
        assert hb_witness(hb, 7, 7) == [7, 7]

    def test_witness_respects_direction(self):
        trace = figure3_trace()
        hb = HappensBefore(trace)
        assert hb_witness(hb, 16, 7) is None


class TestBackendDifferential:
    """Explanations are a *view* of the closure, so every closure knob
    combination must tell the same story: witness paths are valid HB
    chains under each backend, and rendered explanations are identical
    across ``bitmask``/``chains`` and ``full``/``incremental``."""

    KNOBS = [
        (backend, saturation)
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS)
        for saturation in (SAT_FULL, SAT_INCREMENTAL)
    ]

    @pytest.fixture(scope="class", params=["figure3", "figure4", "music"])
    def subject(self, request):
        if request.param == "figure3":
            return request.param, figure3_trace()
        if request.param == "figure4":
            return request.param, figure4_trace()
        from repro.apps.registry import paper_app

        _, trace = paper_app("Music Player", scale=0.05).run(seed=3)
        return request.param, trace

    def test_witness_paths_are_valid_hb_chains_everywhere(self, subject):
        _, trace = subject
        reference = HappensBefore(trace)
        node_of = reference.graph.node_of_op
        n = len(trace)
        # Strided pair sample: dense enough to cross coalesced-node,
        # cross-thread, and unreachable pairs without a quadratic sweep.
        stride_i = max(1, n // 40)
        stride_j = max(1, n // 60)
        for backend, saturation in self.KNOBS:
            hb = HappensBefore(trace, backend=backend, saturation=saturation)
            for i in range(0, n, stride_i):
                for j in range(i, n, stride_j):
                    path = hb_witness(hb, i, j)
                    if node_of[i] == node_of[j]:
                        # Coalesced into one node: program order decides.
                        assert path == ([i, j] if i <= j else None)
                        continue
                    assert (path is not None) == reference.ordered(i, j), (
                        "witness existence diverges at (%d, %d) under (%s, %s)"
                        % (i, j, backend, saturation)
                    )
                    if path is None:
                        continue
                    # Node-level path: endpoints land on i's and j's nodes
                    # (the witness uses each node's first operation).
                    assert node_of[path[0]] == node_of[i]
                    assert node_of[path[-1]] == node_of[j]
                    for a, b in zip(path, path[1:]):
                        # Each step must be an HB fact of *both* the
                        # producing closure and the reference one.
                        assert hb.ordered(a, b)
                        assert reference.ordered(a, b)

    def test_explanations_agree_across_all_knobs(self, subject):
        name, trace = subject
        from repro.core.race_detector import RaceDetector

        renderings = {}
        for backend, saturation in self.KNOBS:
            detector = RaceDetector(trace, backend=backend, saturation=saturation)
            report = detector.detect()
            renderings[(backend, saturation)] = [
                explain_race(trace, detector.hb, race).render()
                for race in report.races
            ]
        baseline = renderings[(BACKEND_BITMASK, SAT_INCREMENTAL)]
        if name != "figure3":  # figure3 is the race-free paper example
            assert baseline, "differential subjects must actually race"
        for knobs, rendered in renderings.items():
            assert rendered == baseline, (
                "explanation text diverges under %s/%s" % knobs
            )
