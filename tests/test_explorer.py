"""Tests for the UI Explorer: DFS exploration, sequence store, replay."""

import pytest

from repro.android import AndroidSystem, UIEvent
from repro.apps.registry import DEMO_APPS, MusicPlayerApp
from repro.explorer import (
    SequenceStore,
    UIExplorer,
    event_key,
    filter_events,
    find_event,
)


class TestEvents:
    def test_event_key_stable(self):
        assert event_key(UIEvent("click", "btn")) == "click:btn"
        assert event_key(UIEvent("back")) == "back"
        assert event_key(UIEvent("text", "f", "hi")) == "text:f='hi'"

    def test_find_event(self):
        events = [UIEvent("click", "a"), UIEvent("back")]
        assert find_event(events, "back").kind == "back"
        assert find_event(events, "click:a").widget_id == "a"
        assert find_event(events, "click:z") is None

    def test_filter_events(self):
        events = [UIEvent("click", "a"), UIEvent("rotate"), UIEvent("back")]
        assert [e.kind for e in filter_events(events, exclude_kinds=("rotate",))] == [
            "click",
            "back",
        ]
        assert [e.kind for e in filter_events(events, include_kinds=("back",))] == ["back"]


class TestSequenceStore:
    def test_record_and_lookup(self):
        store = SequenceStore()
        run = store.record(["a", "b"], trace=None, enabled_after=["c"])
        assert store.explored(["a", "b"])
        assert not store.explored(["a"])
        assert store.lookup(["a", "b"]) is run
        assert len(store) == 1

    def test_frontier(self):
        store = SequenceStore()
        store.record(["a"], trace=None, enabled_after=["b"])
        store.record(["a", "b"], trace=None, enabled_after=[])
        frontier = store.frontier(depth=3)
        assert [r.sequence for r in frontier] == [("a",)]

    def test_json_roundtrip(self):
        store = SequenceStore()
        store.record(["a"], trace=None, decisions=["main"], enabled_after=["b"])
        restored = SequenceStore.from_json(store.to_json())
        assert len(restored) == 1
        run = restored.lookup(["a"])
        assert run.decisions == ("main",)
        assert run.enabled_after == ("b",)

    def test_run_describe(self):
        store = SequenceStore()
        run = store.record([], trace=None)
        assert "<empty>" in run.describe()

    def test_provenance_round_trip(self, tmp_path):
        store = SequenceStore()
        store.record(
            ["a", "b"],
            trace=None,
            strategy="guided.inject",
            seed=7,
            history_ref="runs",
        )
        path = tmp_path / "store.jsonl"
        store.save(path)
        run = SequenceStore.load(path).lookup(["a", "b"])
        assert run.strategy == "guided.inject"
        assert run.seed == 7
        assert run.history_ref == "runs"

    def test_provenance_unaware_records_keep_old_schema(self):
        """Records without provenance serialize without the keys — stores
        written by older strategies stay byte-identical."""
        import json

        store = SequenceStore()
        store.record(["a"], trace=None, enabled_after=["b"])
        (record,) = json.loads(store.to_json())
        assert set(record) == {"run_id", "sequence", "decisions", "enabled_after"}

    def test_old_files_without_provenance_load(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"run_id": 0, "sequence": ["a"], "decisions": [], '
            '"enabled_after": []}\n'
        )
        run = SequenceStore.load(path).lookup(["a"])
        assert run.strategy is None
        assert run.seed is None
        assert run.history_ref is None


class TestExploration:
    def test_depth_zero_single_run(self):
        result = UIExplorer(MusicPlayerApp(), depth=0, seed=1).explore()
        assert result.runs_executed == 1
        assert result.store.runs[0].sequence == ()

    def test_depth_one_explores_all_enabled_events(self):
        result = UIExplorer(
            MusicPlayerApp(), depth=1, seed=1, exclude_kinds=("rotate",)
        ).explore()
        sequences = {run.sequence for run in result.store.runs}
        # Empty run + one per enabled event (playBtn disabled until the
        # download finishes... it IS enabled by quiescence).
        assert () in sequences
        assert ("click:playBtn",) in sequences
        assert ("back",) in sequences

    def test_max_runs_cap(self):
        result = UIExplorer(MusicPlayerApp(), depth=3, seed=1, max_runs=4).explore()
        assert result.runs_executed == 4

    def test_max_branching_cap(self):
        result = UIExplorer(
            MusicPlayerApp(), depth=1, seed=1, max_branching=1
        ).explore()
        # empty run + at most 1 extension
        assert result.runs_executed <= 2

    def test_no_duplicate_sequences(self):
        result = UIExplorer(DEMO_APPS["messenger"], depth=2, seed=2, max_runs=20).explore()
        sequences = [run.sequence for run in result.store.runs]
        assert len(sequences) == len(set(sequences))

    def test_exploration_deterministic(self):
        r1 = UIExplorer(DEMO_APPS["messenger"], depth=2, seed=5, max_runs=8).explore()
        r2 = UIExplorer(DEMO_APPS["messenger"], depth=2, seed=5, max_runs=8).explore()
        t1 = [[op.render() for op in run.trace] for run in r1.store.runs]
        t2 = [[op.render() for op in run.trace] for run in r2.store.runs]
        assert t1 == t2

    def test_prefix_replay_consistent(self):
        """The trace of a run extending prefix P starts with the same event
        outcomes — prefix replay is exact (same seed, same decisions)."""
        explorer = UIExplorer(MusicPlayerApp(), depth=2, seed=3)
        result = explorer.explore()
        by_seq = {run.sequence: run for run in result.store.runs}
        parent = by_seq[("back",)]
        assert parent.trace is not None

    def test_deepest_run(self):
        result = UIExplorer(MusicPlayerApp(), depth=2, seed=1, max_runs=6).explore()
        deepest = result.deepest_run()
        assert deepest is not None
        assert len(deepest.trace) == max(len(t) for t in result.traces)

    def test_traces_named_after_sequences(self):
        result = UIExplorer(MusicPlayerApp(), depth=1, seed=1, max_runs=3).explore()
        for run in result.store.runs:
            assert run.trace.name.startswith("music-player[")
