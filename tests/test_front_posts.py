"""Tests for the at-front post extension rule (HBConfig.front_post_rule).

The paper defers post-to-the-front to future work (§4.2); our extension
derives the sound case: a task K running on thread t posts p_o normally
and then p_f at the front of t's own queue — p_f always runs before p_o.
"""

import pytest

from repro.core.baselines import ANDROID_WITH_FRONT_POSTS
from repro.core.happens_before import ANDROID_HB, HappensBefore, HBConfig
from repro.core.operations import (
    attachq,
    begin,
    end,
    looponq,
    post,
    read,
    threadinit,
    write,
)
from repro.core.race_detector import detect_races
from repro.core.trace import ExecutionTrace

PRELUDE = [threadinit("t"), attachq("t"), looponq("t")]


def barge_trace():
    """Task K posts p_o then barges p_f: p_f runs first."""
    return ExecutionTrace(
        PRELUDE
        + [
            post("t", "K", "t"),
            begin("t", "K"),
            post("t", "p_o", "t"),  # 5: normal post
            post("t", "p_f", "t", at_front=True),  # 6: barge
            end("t", "K"),
            begin("t", "p_f"),
            write("t", "x"),  # 9
            end("t", "p_f"),  # 10
            begin("t", "p_o"),  # 11
            write("t", "x"),  # 12
            end("t", "p_o"),
        ]
    )


class TestExtensionRule:
    def test_paper_semantics_reports_a_race(self):
        """Without the extension the barged pair is conservatively
        unordered — the paper's (sound but imprecise) treatment."""
        report = detect_races(barge_trace(), config=ANDROID_HB)
        assert len(report.races) == 1

    def test_extension_orders_the_barged_pair(self):
        hb = HappensBefore(barge_trace(), config=ANDROID_WITH_FRONT_POSTS)
        assert hb.ordered(10, 11)  # end(p_f) ≺ begin(p_o)
        assert hb.ordered(9, 12)
        report = detect_races(barge_trace(), config=ANDROID_WITH_FRONT_POSTS)
        assert report.races == []

    def test_rule_needs_same_posting_task(self):
        """Barges from different tasks derive nothing (p_o might already
        have run before p_f was posted)."""
        ops = PRELUDE + [
            threadinit("u"),
            threadinit("v"),
            post("u", "K1", "t"),
            post("v", "K2", "t"),
            begin("t", "K1"),
            post("t", "p_o", "t"),
            end("t", "K1"),
            begin("t", "K2"),
            post("t", "p_f", "t", at_front=True),
            end("t", "K2"),
            begin("t", "p_f"),
            write("t", "x"),
            end("t", "p_f"),
            begin("t", "p_o"),
            write("t", "x"),
            end("t", "p_o"),
        ]
        report = detect_races(
            ExecutionTrace(ops), config=ANDROID_WITH_FRONT_POSTS
        )
        assert len(report.races) == 1

    def test_rule_needs_poster_on_target_thread(self):
        """If the posting task runs on another looper, t may have run p_o
        before the barge — no ordering."""
        ops = [
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            threadinit("u"),
            attachq("u"),
            looponq("u"),
            threadinit("w"),
            post("w", "K", "u"),
            begin("u", "K"),
            post("u", "p_o", "t"),
            post("u", "p_f", "t", at_front=True),
            end("u", "K"),
            begin("t", "p_f"),
            write("t", "x"),
            end("t", "p_f"),
            begin("t", "p_o"),
            write("t", "x"),
            end("t", "p_o"),
        ]
        report = detect_races(
            ExecutionTrace(ops), config=ANDROID_WITH_FRONT_POSTS
        )
        assert len(report.races) == 1

    def test_barge_order_requirement(self):
        """p_o must already be pending: a normal post AFTER the barge is
        ordered by plain FIFO reasoning instead? No — the barged task ran
        first, and the normal post came later; the pair needs no new edge
        when posts are in barge-then-normal order (FIFO cannot apply, and
        the extension must not fire either)."""
        ops = PRELUDE + [
            post("t", "K", "t"),
            begin("t", "K"),
            post("t", "p_f", "t", at_front=True),  # barge first
            post("t", "p_o", "t"),  # then the normal post
            end("t", "K"),
            begin("t", "p_f"),
            write("t", "x"),  # 9
            end("t", "p_f"),
            begin("t", "p_o"),
            write("t", "x"),  # 12
            end("t", "p_o"),
        ]
        hb = HappensBefore(ExecutionTrace(ops), config=ANDROID_WITH_FRONT_POSTS)
        # Here the extension premise t2.post_index < t1.post_index fails
        # (p_o posted after p_f), so the edge must come from... nothing:
        # at-front posts are excluded from FIFO. Conservatively unordered.
        assert hb.unordered(9, 12)

    def test_live_runtime_barge(self):
        """End-to-end: a handler barges a cleanup task ahead of pending
        work; with the extension the detector proves them ordered."""
        from repro.android import Activity, AndroidSystem, Ctx, UIEvent

        class BargeActivity(Activity):
            def on_create(self, ctx: Ctx) -> None:
                self.register_button(ctx, "go", on_click=self.on_go)

            def on_go(self, ctx: Ctx) -> None:
                ctx.post(self._work, name="work")
                ctx.post_at_front(self._urgent, name="urgent")

            def _work(self) -> None:
                c = self.env.current_ctx
                c.read(self.obj, "state")

            def _urgent(self) -> None:
                c = self.env.current_ctx
                c.write(self.obj, "state", "reset")

        system = AndroidSystem(seed=1)
        system.launch(BargeActivity)
        system.run_to_quiescence()
        system.fire(UIEvent("click", "go"))
        system.run_to_quiescence()
        trace = system.finish()
        paper = detect_races(trace, config=ANDROID_HB)
        extended = detect_races(trace, config=ANDROID_WITH_FRONT_POSTS)
        assert len(paper.races) == 1  # conservative report
        assert extended.races == []  # the extension proves the order
