"""Tests for the happens-before graph and the coalescing optimization."""

import pytest

from repro.core.graph import HBGraph, bits
from repro.core.operations import (
    attachq,
    begin,
    end,
    looponq,
    post,
    read,
    threadinit,
    write,
)
from repro.core.trace import ExecutionTrace


class TestBits:
    def test_empty(self):
        assert bits(0) == []

    def test_various(self):
        assert bits(0b1) == [0]
        assert bits(0b1010) == [1, 3]
        assert bits(1 << 100 | 1) == [0, 100]


class TestCoalescing:
    def test_contiguous_same_task_accesses_merge(self):
        trace = ExecutionTrace(
            [
                threadinit("t"),
                write("t", "a"),
                write("t", "b"),
                read("t", "a"),
            ]
        )
        graph = HBGraph(trace, coalesce=True)
        assert len(graph) == 2  # threadinit + one access block
        block = graph.node_for(1)
        assert block is graph.node_for(2) is graph.node_for(3)
        assert block.locations() == ["a", "b"]
        assert block.writes_to("a") and block.reads_from("a")
        assert block.writes_to("b") and not block.writes_to("c")

    def test_sync_op_on_same_thread_breaks_run(self):
        trace = ExecutionTrace(
            [
                threadinit("t"),
                write("t", "a"),
                attachq("t"),
                write("t", "a"),
            ]
        )
        graph = HBGraph(trace, coalesce=True)
        assert graph.node_for(1) is not graph.node_for(3)

    def test_other_threads_accesses_do_not_break_run(self):
        """Per-thread coalescing: interleaved accesses from another thread
        leave both runs as single nodes."""
        trace = ExecutionTrace(
            [
                threadinit("t"),
                threadinit("u"),
                write("t", "a"),
                write("u", "b"),
                write("t", "a"),
                write("u", "b"),
            ]
        )
        graph = HBGraph(trace, coalesce=True)
        assert graph.node_for(2) is graph.node_for(4)
        assert graph.node_for(3) is graph.node_for(5)
        assert len(graph) == 4

    def test_task_boundary_breaks_run(self):
        trace = ExecutionTrace(
            [
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                post("t", "p1", "t"),
                post("t", "p2", "t"),
                begin("t", "p1"),
                write("t", "a"),
                end("t", "p1"),
                begin("t", "p2"),
                write("t", "a"),
                end("t", "p2"),
            ]
        )
        graph = HBGraph(trace, coalesce=True)
        assert graph.node_for(6) is not graph.node_for(9)
        assert graph.node_for(6).task == "p1"
        assert graph.node_for(9).task == "p2"

    def test_coalesce_disabled_one_node_per_op(self):
        trace = ExecutionTrace(
            [threadinit("t"), write("t", "a"), write("t", "a"), read("t", "a")]
        )
        graph = HBGraph(trace, coalesce=False)
        assert len(graph) == 4

    def test_reduction_ratio(self):
        trace = ExecutionTrace(
            [threadinit("t")] + [write("t", "a")] * 9
        )
        graph = HBGraph(trace, coalesce=True)
        assert len(graph) == 2
        assert graph.reduction_ratio == pytest.approx(0.2)


class TestOrderingQueries:
    def test_ops_within_one_block_ordered_by_index(self):
        trace = ExecutionTrace(
            [threadinit("t"), write("t", "a"), write("t", "b")]
        )
        graph = HBGraph(trace, coalesce=True)
        assert graph.ordered_ops(1, 2)
        assert not graph.ordered_ops(2, 1)

    def test_node_reflexive(self):
        trace = ExecutionTrace([threadinit("t"), write("t", "a")])
        graph = HBGraph(trace)
        assert graph.ordered(0, 0)

    def test_edge_insertion_and_counts(self):
        trace = ExecutionTrace([threadinit("t"), threadinit("u"), write("t", "a")])
        graph = HBGraph(trace, coalesce=False)
        assert graph.add_st(0, 2)
        assert not graph.add_st(0, 2)  # duplicate
        assert graph.add_mt(0, 1)
        st, mt = graph.edge_count()
        assert (st, mt) == (1, 1)
        assert graph.ordered(0, 2)
        assert graph.successors(0) == [1, 2]

    def test_masks(self):
        trace = ExecutionTrace([threadinit("t"), threadinit("u"), write("t", "a")])
        graph = HBGraph(trace, coalesce=False)
        assert bits(graph.same_thread_mask("t")) == [0, 2]
        assert bits(graph.diff_thread_mask("t")) == [1]

    def test_to_dot_renders(self):
        trace = ExecutionTrace([threadinit("t"), write("t", "a")])
        graph = HBGraph(trace)
        graph.add_st(0, 1)
        dot = graph.to_dot()
        assert dot.startswith("digraph") and "n0 -> n1" in dot


class TestPrecisionPreservation:
    """Detection results must be identical with and without coalescing —
    the paper's 'without sacrificing on the precision' claim (§6)."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_race_reports_equal_on_runtime_traces(self, seed):
        from repro.apps.registry import DEMO_APPS
        from repro.core.race_detector import detect_races
        from repro.explorer import UIExplorer

        app = DEMO_APPS["messenger"]
        result = UIExplorer(app, depth=1, seed=seed, max_runs=4).explore()
        for run in result.store.runs:
            with_c = detect_races(run.trace, coalesce=True)
            without_c = detect_races(run.trace, coalesce=False)
            key = lambda report: sorted(
                (race.location, race.category.value) for race in report.races
            )
            assert key(with_c) == key(without_c)
