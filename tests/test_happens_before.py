"""Rule-by-rule tests of the happens-before relation (Figures 6 and 7)."""

import pytest

from repro.core.happens_before import ANDROID_HB, HappensBefore, HBConfig
from repro.core.operations import (
    acquire,
    attachq,
    begin,
    enable,
    end,
    fork,
    join,
    looponq,
    post,
    read,
    release,
    threadexit,
    threadinit,
    write,
)
from repro.core.trace import ExecutionTrace


def hb_of(*ops, config=ANDROID_HB, coalesce=True):
    return HappensBefore(ExecutionTrace(list(ops)), config=config, coalesce=coalesce)


LOOPER_PRELUDE = [threadinit("t"), attachq("t"), looponq("t")]


class TestProgramOrderRules:
    def test_no_q_po_plain_thread_total_order(self):
        hb = hb_of(threadinit("t"), write("t", "a"), write("t", "b"), read("t", "a"))
        assert hb.ordered(1, 2) and hb.ordered(2, 3) and hb.ordered(1, 3)

    def test_no_q_po_pre_loop_ops_precede_everything_on_thread(self):
        ops = [
            threadinit("t"),
            write("t", "pre"),  # 1: before attachQ
            attachq("t"),
            looponq("t"),
            post("t", "p", "t"),
            begin("t", "p"),
            write("t", "in"),  # 6
            end("t", "p"),
        ]
        hb = hb_of(*ops)
        assert hb.ordered(1, 6)

    def test_async_po_within_task(self):
        ops = LOOPER_PRELUDE + [
            post("t", "p", "t"),
            begin("t", "p"),
            write("t", "a"),  # 5
            read("t", "b"),  # 6
            end("t", "p"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.ordered(5, 6)
        assert hb.ordered(4, 7)  # begin before end

    def test_no_order_across_tasks_without_rule(self):
        """Two tasks whose posts are unordered (posted from two plain
        threads) are unordered — program order does not apply across
        asynchronous tasks (the paper's key departure from classic HB)."""
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            write("t", "x"),  # 8
            end("t", "p1"),
            begin("t", "p2"),
            write("t", "x"),  # 11
            end("t", "p2"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.unordered(8, 11)


class TestEnableRules:
    def test_enable_st_same_thread(self):
        ops = LOOPER_PRELUDE + [
            enable("t", "p"),  # 3
            post("t", "p", "t"),  # 4
            begin("t", "p"),
            end("t", "p"),
        ]
        hb = hb_of(*ops)
        assert hb.ordered(3, 4)

    def test_enable_mt_cross_thread(self):
        ops = LOOPER_PRELUDE + [
            enable("t", "p"),  # 3
            threadinit("u"),
            post("u", "p", "t"),  # 5
            begin("t", "p"),
            end("t", "p"),
        ]
        hb = hb_of(*ops)
        assert hb.ordered(3, 5)

    def test_enable_matches_event_tag(self):
        """Posts of event-handler instances reference their enable by the
        ``event`` tag (runtime-generated traces)."""
        ops = LOOPER_PRELUDE + [
            enable("t", "click:btn"),  # 3
            post("t", "onClick#1", "t", event="click:btn"),  # 4
            begin("t", "onClick#1"),
            end("t", "onClick#1"),
        ]
        hb = hb_of(*ops)
        assert hb.ordered(3, 4)

    def test_enable_after_post_gives_no_edge(self):
        ops = LOOPER_PRELUDE + [
            post("t", "p", "t"),  # 3
            enable("t", "p"),  # 4 (too late)
            begin("t", "p"),
            end("t", "p"),
        ]
        hb = hb_of(*ops, coalesce=False)
        # No ENABLE edge backwards; 3 and 4 are still both pre-task ops on
        # t... the post is outside any task, enable too: NO-Q-PO does not
        # apply (loop started). They are unordered.
        assert not hb.ordered(4, 3)


class TestPostRules:
    def test_post_st_self_post(self):
        ops = LOOPER_PRELUDE + [post("t", "p", "t"), begin("t", "p"), end("t", "p")]
        hb = hb_of(*ops)
        assert hb.ordered(3, 4)

    def test_post_mt_cross_thread(self):
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            post("u", "p", "t"),  # 4
            begin("t", "p"),  # 5
            end("t", "p"),
        ]
        hb = hb_of(*ops)
        assert hb.ordered(4, 5)

    def test_attach_q_mt(self):
        ops = [
            threadinit("t"),
            attachq("t"),  # 1
            looponq("t"),
            threadinit("u"),
            post("u", "p", "t"),  # 4
            begin("t", "p"),
            end("t", "p"),
        ]
        hb = hb_of(*ops)
        assert hb.ordered(1, 4)


class TestForkJoinLock:
    def test_fork_edge(self):
        hb = hb_of(threadinit("t"), fork("t", "u"), threadinit("u"), write("u", "x"))
        assert hb.ordered(1, 2)
        assert hb.ordered(0, 3)  # transitively across threads

    def test_join_edge(self):
        hb = hb_of(
            threadinit("t"),
            fork("t", "u"),
            threadinit("u"),
            write("u", "x"),  # 3
            threadexit("u"),  # 4
            join("t", "u"),  # 5
            read("t", "x"),  # 6
        )
        assert hb.ordered(4, 5)
        assert hb.ordered(3, 6)

    def test_lock_edge_cross_thread(self):
        hb = hb_of(
            threadinit("t"),
            threadinit("u"),
            acquire("t", "l"),
            write("t", "x"),  # 3
            release("t", "l"),  # 4
            acquire("u", "l"),  # 5
            read("u", "x"),  # 6
        )
        assert hb.ordered(4, 5)
        assert hb.ordered(3, 6)

    def test_no_lock_edge_same_thread_tasks(self):
        """Restriction (2): acquire/release on the same thread derive no
        ordering — locks cannot order tasks running sequentially on one
        thread."""
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            acquire("t", "l"),
            write("t", "x"),  # 9
            release("t", "l"),
            end("t", "p1"),
            begin("t", "p2"),
            acquire("t", "l"),
            write("t", "x"),  # 14
            release("t", "l"),
            end("t", "p2"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.unordered(9, 14)

    def test_spurious_lock_transitivity_excluded(self):
        """Restriction (3), the paper's motivating subtlety: two tasks on t
        using lock l must NOT become ordered through another thread u that
        also uses l (release(t,l) -> acquire(u,l) -> release(u,l) ->
        acquire(t,l) would order them under naive transitivity)."""
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            acquire("t", "l"),
            write("t", "x"),  # 9
            release("t", "l"),  # 10
            end("t", "p1"),
            acquire("u", "l"),  # 12  (u's critical section interleaves)
            release("u", "l"),  # 13
            begin("t", "p2"),
            acquire("t", "l"),  # 15
            write("t", "x"),  # 16
            release("t", "l"),
            end("t", "p2"),
        ]
        hb = hb_of(*ops, coalesce=False)
        # The chain 10 -> 12 -> 13 -> 15 exists edge-wise...
        assert hb.ordered(10, 12)
        assert hb.ordered(13, 15)
        # ...but the same-thread pair stays unordered: no TRANS-ST applies
        # and TRANS-MT only emits cross-thread pairs.
        assert hb.unordered(9, 16)

    def test_naive_transitivity_would_order_them(self):
        """The same trace under plain transitivity + same-thread lock edges
        (the naive combination) derives the spurious ordering."""
        from repro.core.baselines import NAIVE_COMBINED

        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            acquire("t", "l"),
            write("t", "x"),  # 9
            release("t", "l"),
            end("t", "p1"),
            acquire("u", "l"),
            release("u", "l"),
            begin("t", "p2"),
            acquire("t", "l"),
            write("t", "x"),  # 16
            release("t", "l"),
            end("t", "p2"),
        ]
        hb = hb_of(*ops, config=NAIVE_COMBINED, coalesce=False)
        assert hb.ordered(9, 16)


class TestFifoRule:
    def _two_tasks(self, post1, post2):
        return LOOPER_PRELUDE + [
            threadinit("u"),
            post1,
            post2,
            begin("t", "p1"),
            write("t", "x"),  # 7
            end("t", "p1"),  # 8
            begin("t", "p2"),  # 9
            write("t", "x"),  # 10
            end("t", "p2"),
        ]

    def test_fifo_orders_tasks_with_ordered_posts(self):
        ops = self._two_tasks(post("u", "p1", "t"), post("u", "p2", "t"))
        hb = hb_of(*ops, coalesce=False)
        assert hb.ordered(8, 9)  # end(p1) -> begin(p2)
        assert hb.ordered(7, 10)  # transitively, the writes

    def test_fifo_needs_post_ordering(self):
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),  # unordered with the first post
            begin("t", "p1"),
            write("t", "x"),  # 8
            end("t", "p1"),
            begin("t", "p2"),
            write("t", "x"),  # 11
            end("t", "p2"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.unordered(8, 11)

    def test_fifo_disabled_by_config(self):
        from repro.core.baselines import NO_FIFO

        ops = self._two_tasks(post("u", "p1", "t"), post("u", "p2", "t"))
        hb = hb_of(*ops, config=NO_FIFO, coalesce=False)
        assert hb.unordered(7, 10)

    def test_delayed_post_after_plain_post_ordered(self):
        """(a) of §4.2: βi not delayed, βj delayed -> ordered."""
        ops = self._two_tasks(
            post("u", "p1", "t"), post("u", "p2", "t", delay=100)
        )
        hb = hb_of(*ops, coalesce=False)
        assert hb.ordered(8, 9)

    def test_delayed_pair_ordered_when_delays_increase(self):
        """(b): both delayed with δi <= δj -> ordered."""
        ops = self._two_tasks(
            post("u", "p1", "t", delay=10), post("u", "p2", "t", delay=50)
        )
        hb = hb_of(*ops, coalesce=False)
        assert hb.ordered(8, 9)

    def test_delayed_first_plain_second_not_ordered(self):
        """A delayed post followed by a plain post derives nothing — the
        plain task may run before the delayed one fires."""
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            post("u", "p1", "t", delay=100),
            post("u", "p2", "t"),
            begin("t", "p2"),  # the plain task runs first
            write("t", "x"),  # 7
            end("t", "p2"),
            begin("t", "p1"),
            write("t", "x"),  # 10
            end("t", "p1"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.unordered(7, 10)

    def test_delays_decreasing_not_ordered(self):
        ops = LOOPER_PRELUDE + [
            threadinit("u"),
            post("u", "p1", "t", delay=500),
            post("u", "p2", "t", delay=10),
            begin("t", "p2"),
            write("t", "x"),  # 7
            end("t", "p2"),
            begin("t", "p1"),
            write("t", "x"),  # 10
            end("t", "p1"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.unordered(7, 10)

    def test_at_front_posts_derive_no_fifo(self):
        """Post-to-the-front is future work in the paper; we conservatively
        derive no FIFO edge when either post barged."""
        ops = self._two_tasks(
            post("u", "p1", "t"), post("u", "p2", "t", at_front=True)
        )
        hb = hb_of(*ops, coalesce=False)
        assert hb.unordered(7, 10)


class TestNoPreRule:
    def test_nopre_orders_task_before_task_posted_during_it(self):
        """If task p1 posts p2 (or otherwise happens-before p2's post),
        run-to-completion means all of p1 precedes p2."""
        ops = LOOPER_PRELUDE + [
            post("t", "p1", "t"),
            begin("t", "p1"),
            write("t", "x"),  # 5
            post("t", "p2", "t"),  # posted from within p1
            write("t", "y"),  # 7: after the post, still inside p1
            end("t", "p1"),
            begin("t", "p2"),
            read("t", "y"),  # 10
            end("t", "p2"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.ordered(8, 9)  # end(p1) -> begin(p2) via NOPRE (and FIFO)
        assert hb.ordered(7, 10)  # the post-subsequent write too

    def test_nopre_via_cross_thread_chain(self):
        """p1 forks u; u posts p2: an op of p1 (the fork) happens-before
        post(p2), so NOPRE orders end(p1) before begin(p2) even though the
        posts themselves are on different threads."""
        ops = LOOPER_PRELUDE + [
            post("t", "p1", "t"),
            begin("t", "p1"),
            write("t", "x"),  # 5
            fork("t", "u"),  # 6
            write("t", "y"),  # 7
            end("t", "p1"),  # 8
            threadinit("u"),
            post("u", "p2", "t"),  # 10
            begin("t", "p2"),  # 11
            read("t", "y"),  # 12
            end("t", "p2"),
        ]
        hb = hb_of(*ops, coalesce=False)
        assert hb.ordered(8, 11)
        assert hb.ordered(7, 12)

    def test_nopre_disabled_loses_ordering(self):
        from repro.core.baselines import NO_NOPRE
        from repro.core.happens_before import HBConfig

        config = HBConfig(nopre=False, fifo=False)
        ops = LOOPER_PRELUDE + [
            post("t", "p1", "t"),
            begin("t", "p1"),
            fork("t", "u"),
            write("t", "y"),  # 6
            end("t", "p1"),
            threadinit("u"),
            post("u", "p2", "t"),
            begin("t", "p2"),
            read("t", "y"),  # 11
            end("t", "p2"),
        ]
        hb = hb_of(*ops, config=config, coalesce=False)
        assert hb.unordered(6, 11)


class TestFigureTraces:
    def test_figure3_pairs_ordered(self):
        from repro.apps.paper_traces import FIGURE3_POSITIONS, figure3_trace

        hb = HappensBefore(figure3_trace())
        p = FIGURE3_POSITIONS
        assert hb.ordered(p["write_launch"], p["read_background"])
        assert hb.ordered(p["write_launch"], p["read_post_execute"])

    def test_figure4_two_races_one_ordering(self):
        from repro.apps.paper_traces import FIGURE4_POSITIONS, figure4_trace

        hb = HappensBefore(figure4_trace())
        q = FIGURE4_POSITIONS
        assert hb.ordered(q["write_launch"], q["write_destroy"])
        assert hb.unordered(q["read_background"], q["write_destroy"])
        assert hb.unordered(q["read_post_execute"], q["write_destroy"])

    def test_figure4_without_enable_is_false_positive(self):
        """§2.4: 'Without the enable operation ... we could not have derived
        the required happens-before ordering between operations 7 and 21'.

        In the paper's simplified trace both system posts go through the
        same binder thread t0, whose program order alone yields the FIFO
        edge.  Real binder posts come from a pool; with LAUNCH_ACTIVITY and
        onDestroy posted by *different* binder threads, the enable edge is
        the only source of the ordering."""
        from repro.core.baselines import NO_ENABLE

        def variant():
            return ExecutionTrace(
                [
                    threadinit("b1"),
                    threadinit("b2"),
                    threadinit("t1"),
                    attachq("t1"),
                    looponq("t1"),
                    post("b1", "LAUNCH_ACTIVITY", "t1"),
                    begin("t1", "LAUNCH_ACTIVITY"),
                    write("t1", "act.flag"),  # 7
                    enable("t1", "onDestroy"),  # 8
                    end("t1", "LAUNCH_ACTIVITY"),
                    post("b2", "onDestroy", "t1"),  # different binder thread
                    begin("t1", "onDestroy"),
                    write("t1", "act.flag"),  # 12
                    end("t1", "onDestroy"),
                ]
            )

        with_enable = HappensBefore(variant())
        assert with_enable.ordered(7, 12)
        without = HappensBefore(variant(), config=NO_ENABLE)
        assert without.unordered(7, 12)


class TestRelationStructure:
    def test_reflexive_by_convention(self):
        hb = hb_of(threadinit("t"), write("t", "x"))
        assert hb.ordered(1, 1)

    def test_antisymmetric_forward_only(self):
        hb = hb_of(threadinit("t"), write("t", "x"), write("t", "y"))
        assert hb.ordered(1, 2)
        assert not hb.ordered(2, 1)

    def test_stats_populated(self):
        from repro.apps.paper_traces import figure4_trace

        hb = HappensBefore(figure4_trace())
        assert hb.stats.trace_length == len(figure4_trace())
        assert hb.stats.node_count == len(hb.graph)
        assert hb.stats.outer_iterations >= 1
        assert hb.stats.st_edges + hb.stats.mt_edges > 0

    def test_coalescing_does_not_change_ordering_answers(self):
        from repro.apps.music_player import run_scenario

        _, trace = run_scenario(press_back=True, seed=9)
        dense = HappensBefore(trace, coalesce=False)
        coalesced = HappensBefore(trace, coalesce=True)
        accesses = [op.index for op in trace.memory_accesses()]
        for i in accesses:
            for j in accesses:
                if i < j:
                    assert dense.ordered(i, j) == coalesced.ordered(i, j), (i, j)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HBConfig(program_order="bogus")
        with pytest.raises(ValueError):
            HBConfig(lock_edges="bogus")
        with pytest.raises(ValueError):
            HBConfig(transitivity="bogus")
