"""Differential tests: incremental saturation and batched enumeration are
*performance knobs* — for every trace and every configuration they must
produce bit-for-bit the same closure and report-for-report the same races
as the reference full sweep / pairwise enumeration.

The inputs come from two generators:

* :func:`tests.test_property.run_random_app` — whole random applications
  exercising forks, loopers, delayed/at-front posts, and locks;
* :func:`repro.apps.ladder.ladder_trace` — adversarial multi-round
  traces whose outer FIFO/NOPRE fixpoint needs one round per ladder
  level, so the incremental path's frontier logic is stressed across
  many delta rounds (not just the 2–3 rounds typical app traces need).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.ladder import ladder_trace
from repro.core import HappensBefore, SAT_FULL, SAT_INCREMENTAL, detect_races
from repro.core.baselines import ALL_CONFIGS
from repro.core.race_detector import ENUM_BATCHED, ENUM_PAIRWISE, RaceDetector
from tests.test_property import run_random_app

SUPPRESS = [HealthCheck.too_slow]


def report_key(report):
    """Everything observable about a report except wall-clock timing."""
    return (
        report.racy_pair_count,
        report.node_count,
        report.trace_length,
        [race.to_dict() for race in report.races],
    )


def assert_same_closure(trace, config, coalesce):
    full = HappensBefore(trace, config, coalesce=coalesce, saturation=SAT_FULL)
    inc = HappensBefore(trace, config, coalesce=coalesce, saturation=SAT_INCREMENTAL)
    assert full.graph.st == inc.graph.st
    assert full.graph.mt == inc.graph.mt
    assert full.stats.outer_iterations == inc.stats.outer_iterations
    assert full.stats.fifo_edges == inc.stats.fifo_edges
    assert full.stats.nopre_edges == inc.stats.nopre_edges
    assert full.stats.st_edges == inc.stats.st_edges
    assert full.stats.mt_edges == inc.stats.mt_edges
    return inc


class TestClosureEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_all_presets(self, seed):
        trace = run_random_app(seed).build_trace()
        for config in ALL_CONFIGS.values():
            for coalesce in (True, False):
                assert_same_closure(trace, config, coalesce)

    @pytest.mark.parametrize("preset", sorted(ALL_CONFIGS))
    def test_ladder_all_presets(self, preset):
        trace = ladder_trace(6, 3)
        assert_same_closure(trace, ALL_CONFIGS[preset], True)

    def test_ladder_needs_many_outer_rounds(self):
        # The equivalence above is only meaningful if the delta path really
        # runs multiple rounds: ladders need ~one outer round per level.
        hb = HappensBefore(ladder_trace(6, 3), saturation=SAT_INCREMENTAL)
        assert hb.stats.outer_iterations >= 4

    def test_ladder_uncoalesced(self):
        assert_same_closure(ladder_trace(5, 2), ALL_CONFIGS["android"], False)


class TestDetectionEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_all_strategy_combos(self, seed):
        trace = run_random_app(seed).build_trace()
        reference = detect_races(
            trace, saturation=SAT_FULL, enumeration=ENUM_PAIRWISE
        )
        for saturation in (SAT_FULL, SAT_INCREMENTAL):
            for enumeration in (ENUM_PAIRWISE, ENUM_BATCHED):
                report = detect_races(
                    trace, saturation=saturation, enumeration=enumeration
                )
                assert report_key(report) == report_key(reference)

    def test_ladder_reports_identical_and_nonempty(self):
        trace = ladder_trace(6, 4, rogues=2)
        reference = detect_races(
            trace, saturation=SAT_FULL, enumeration=ENUM_PAIRWISE
        )
        assert reference.races  # rogue tasks race against the ladder
        fast = detect_races(
            trace, saturation=SAT_INCREMENTAL, enumeration=ENUM_BATCHED
        )
        assert report_key(fast) == report_key(reference)


class TestStrategyValidation:
    def test_bad_saturation_rejected(self):
        trace = ladder_trace(2, 1)
        with pytest.raises(ValueError):
            HappensBefore(trace, saturation="magic")
        with pytest.raises(ValueError):
            RaceDetector(trace, saturation="magic")

    def test_bad_enumeration_rejected(self):
        with pytest.raises(ValueError):
            RaceDetector(ladder_trace(2, 1), enumeration="magic")

    def test_defaults_are_the_fast_path(self):
        detector = RaceDetector(ladder_trace(2, 1))
        assert detector.saturation == SAT_INCREMENTAL
        assert detector.enumeration == ENUM_BATCHED


class TestKernelAndWorkerAxes:
    """The incremental/full equivalence must also hold under the PR-7
    scale levers: word-batched kernels and process-sharded sweeps."""

    def test_ladder_words_kernel_and_workers(self):
        from repro.core import KERNEL_PYTHON, KERNEL_WORDS

        trace = ladder_trace(5, 2, body=2)
        reference = HappensBefore(
            trace, saturation=SAT_FULL, kernel=KERNEL_PYTHON
        )
        for saturation in (SAT_FULL, SAT_INCREMENTAL):
            for workers in (1, 2):
                hb = HappensBefore(
                    trace,
                    saturation=saturation,
                    kernel=KERNEL_WORDS,
                    workers=workers,
                )
                assert hb.graph.st == reference.graph.st, (saturation, workers)
                assert hb.graph.mt == reference.graph.mt, (saturation, workers)
                assert (
                    hb.stats.outer_iterations
                    == reference.stats.outer_iterations
                )

    def test_lock_handoff_all_axes_empty_report(self):
        from repro.apps.ladder import lock_handoff_trace
        from repro.core import KERNEL_PYTHON, KERNEL_WORDS

        trace = lock_handoff_trace()
        for saturation in (SAT_FULL, SAT_INCREMENTAL):
            for kernel in (KERNEL_PYTHON, KERNEL_WORDS):
                for workers in (1, 2):
                    report = detect_races(
                        trace,
                        saturation=saturation,
                        kernel=kernel,
                        closure_workers=workers,
                    )
                    assert not report.races, (saturation, kernel, workers)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_words_kernel(self, seed):
        from repro.core import KERNEL_PYTHON, KERNEL_WORDS

        trace = run_random_app(seed).build_trace()
        full = HappensBefore(trace, saturation=SAT_FULL, kernel=KERNEL_PYTHON)
        inc = HappensBefore(
            trace, saturation=SAT_INCREMENTAL, kernel=KERNEL_WORDS
        )
        assert full.graph.st == inc.graph.st
        assert full.graph.mt == inc.graph.mt
