"""Unit tests for small infrastructure: id allocation, shared objects,
binder pools, and failure injection."""

import pytest

from repro.android import AndroidEnv, AndroidSystem, BinderPool, Ctx, SharedObject
from repro.android.errors import AppCrashError
from repro.android.ids import IdAllocator
from repro.core import validate_trace
from repro.core.operations import OpKind


class TestIdAllocator:
    def test_alloc_prefixed_counters(self):
        ids = IdAllocator()
        assert ids.alloc("bg") == "bg-1"
        assert ids.alloc("bg") == "bg-2"
        assert ids.alloc("timer") == "timer-1"

    def test_alloc_instance_renaming(self):
        ids = IdAllocator()
        assert ids.alloc_instance("onClick") == "onClick"
        assert ids.alloc_instance("onClick") == "onClick#2"
        assert ids.alloc_instance("other") == "other"

    def test_serial(self):
        ids = IdAllocator()
        assert ids.serial("obj") == 1
        assert ids.serial("obj") == 2

    def test_reset(self):
        ids = IdAllocator()
        ids.alloc("bg")
        ids.reset()
        assert ids.alloc("bg") == "bg-1"


class TestSharedObject:
    def test_location_naming(self):
        env = AndroidEnv(name="t")
        a = SharedObject(env, "Widget")
        b = SharedObject(env, "Widget")
        assert a.location_base == "Widget@1"
        assert b.location_base == "Widget@2"
        assert a.location_of("x") == "Widget@1.x"

    def test_raw_access_unlogged(self):
        env = AndroidEnv(name="t")
        obj = SharedObject(env, "O", seeded=1)
        before = len(env.ops)
        assert obj.raw_read("seeded") == 1
        obj.raw_write("y", 2)
        assert obj.raw_read("y") == 2
        assert len(env.ops) == before

    def test_instrumented_access_logged(self):
        env = AndroidEnv(name="t")
        obj = SharedObject(env, "O")
        env.main.push_action(lambda: env.current_ctx.write(obj, "x", 5))
        env.run()
        writes = [op for op in env.ops if op.kind is OpKind.WRITE]
        assert [op.location for op in writes] == ["O@1.x"]
        assert obj.raw_read("x") == 5

    def test_fields_listing(self):
        env = AndroidEnv(name="t")
        obj = SharedObject(env, "O", a=1, b=2)
        assert sorted(obj.fields()) == ["a", "b"]


class TestBinderPool:
    def test_round_robin_dispatch(self):
        env = AndroidEnv(name="t")
        pool = BinderPool(env, size=3)
        ran = []
        for i in range(6):
            pool.submit(lambda i=i: ran.append(i))
        env.run()
        assert sorted(ran) == list(range(6))
        names = {t.name for t in pool.threads}
        assert len(names) == 3

    def test_submit_post_targets_main(self):
        env = AndroidEnv(name="t")
        pool = BinderPool(env, size=2)
        ran = []
        env.run()  # main looper up
        pool.submit_post(env.main, lambda: ran.append("x"), "sysTask")
        env.run()
        assert ran == ["x"]
        posts = [op for op in env.ops if op.kind is OpKind.POST]
        assert posts[0].thread.startswith("binder-")


class TestFailureInjection:
    def test_crash_in_lifecycle_callback_reports_task(self):
        from repro.android import Activity

        class Broken(Activity):
            def on_resume(self, ctx: Ctx) -> None:
                raise RuntimeError("resume exploded")

        system = AndroidSystem(seed=0)
        system.launch(Broken)
        with pytest.raises(AppCrashError) as info:
            system.run_to_quiescence()
        assert "LAUNCH_ACTIVITY" in info.value.task
        assert isinstance(info.value.original, RuntimeError)

    def test_trace_up_to_crash_is_analyzable(self):
        from repro.android import Activity

        class Broken(Activity):
            def on_create(self, ctx: Ctx) -> None:
                ctx.write(self.obj, "x", 1)

            def on_resume(self, ctx: Ctx) -> None:
                raise RuntimeError("boom")

        system = AndroidSystem(seed=0)
        system.launch(Broken)
        with pytest.raises(AppCrashError):
            system.run_to_quiescence()
        # The partial trace (task still open) is still a valid prefix.
        trace = system.env.build_trace("partial")
        validate_trace(trace)
        assert any(op.kind is OpKind.WRITE for op in trace)

    def test_crash_in_background_thread(self):
        from repro.android import Activity

        class Broken(Activity):
            def on_resume(self, ctx: Ctx) -> None:
                def worker(tctx: Ctx):
                    yield
                    raise ValueError("bg boom")

                ctx.fork(worker, name="doomed")

        system = AndroidSystem(seed=0)
        system.launch(Broken)
        with pytest.raises(AppCrashError) as info:
            system.run_to_quiescence()
        assert info.value.thread == "doomed"

    def test_env_refuses_to_continue_after_crash(self):
        env = AndroidEnv(name="t")

        def boom():
            raise ValueError("x")

        env.main.push_action(lambda: env.post_message(env.main, env.main, boom, "b"))
        with pytest.raises(AppCrashError):
            env.run()
        with pytest.raises(AppCrashError):
            env.step()
