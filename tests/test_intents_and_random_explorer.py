"""Tests for intent injection (§8 future work) and the random-exploration
baselines (§7: Monkey, Dynodroid)."""

import pytest

from repro.android import AndroidSystem, Intent, UIEvent
from repro.apps.notes_app import NotesActivity, NotesApp
from repro.core import detect_races, validate_trace
from repro.explorer import (
    DynodroidExplorer,
    MonkeyExplorer,
    UIExplorer,
    compare_strategies,
    event_key,
)


class TestIntent:
    def test_extras(self):
        intent = Intent("ACTION", {"k": 1})
        assert intent.get_extra("k") == 1
        assert intent.get_extra("missing", "d") == "d"
        richer = intent.with_extra("j", 2)
        assert richer.get_extra("j") == 2
        assert intent.get_extra("j") is None  # immutable

    def test_str(self):
        assert "ACTION" in str(Intent("ACTION"))
        assert "{'k': 1}" in str(Intent("ACTION", {"k": 1}))


class TestIntentInjection:
    def test_registered_action_becomes_event(self):
        system = NotesApp().build(seed=0)
        system.run_to_quiescence()
        keys = {event_key(e) for e in system.enabled_events()}
        assert "intent:android.net.conn.CONNECTIVITY_CHANGE" in keys

    def test_intent_event_delivers_broadcast(self):
        system = NotesApp().build(seed=0)
        system.run_to_quiescence()
        activity = system.screen.foreground
        system.fire(UIEvent("intent", "android.net.conn.CONNECTIVITY_CHANGE"))
        system.run_to_quiescence()
        assert activity.obj.raw_read("online") is True
        trace = system.finish()
        validate_trace(trace)

    def test_unregistered_intent_is_not_offered(self):
        from repro.apps.music_player import DwFileAct

        system = AndroidSystem(seed=0)
        system.launch(DwFileAct)
        system.run_to_quiescence()
        assert not any(e.kind == "intent" for e in system.enabled_events())

    def test_systematic_explorer_reaches_intent_races(self):
        """With intent events in the vocabulary, the DFS explorer can
        drive re-sync scenarios."""
        explorer = UIExplorer(
            NotesApp(),
            depth=1,
            seed=2,
            include_kinds=("intent", "click"),
            exclude_kinds=(),
        )
        result = explorer.explore()
        sequences = {run.sequence for run in result.store.runs}
        assert any(
            seq and seq[0].startswith("intent:") for seq in sequences
        )


class TestRandomExplorers:
    def test_monkey_cannot_inject_intents(self):
        explorer = MonkeyExplorer(NotesApp(), budget=5, seed=1)
        result = explorer.run()
        assert all(not key.startswith("intent:") for key in result.events_fired)

    def test_dynodroid_prefers_unfired_events(self):
        # Keep the vocabulary constant (no BACK, which would empty the
        # screen): then biased-random is round-robin-fair.
        explorer = DynodroidExplorer(NotesApp(), budget=6, seed=1)
        explorer.include_kinds = ("click", "intent")
        result = explorer.run()
        counts = {}
        for key in result.events_fired:
            counts[key] = counts.get(key, 0) + 1
        assert max(counts.values()) <= min(counts.values()) + 1

    def test_runs_are_deterministic_per_seed(self):
        a = MonkeyExplorer(NotesApp(), budget=5, seed=7).run()
        b = MonkeyExplorer(NotesApp(), budget=5, seed=7).run()
        assert a.events_fired == b.events_fired
        assert [op.render() for op in a.trace] == [op.render() for op in b.trace]

    def test_events_to_first_race_recorded(self):
        result = DynodroidExplorer(NotesApp(), budget=6, seed=3).run()
        validate_trace(result.trace)
        if result.report.races:
            assert result.events_to_first_race is not None
            assert 1 <= result.events_to_first_race <= len(result.events_fired)
        assert result.describe().startswith("notes/dynodroid")

    def test_compare_strategies_structure(self):
        comparison = compare_strategies(NotesApp(), budget=4, seeds=(0, 1))
        assert set(comparison) == {"monkey", "dynodroid"}
        for runs in comparison.values():
            assert len(runs) == 2
            for run in runs:
                validate_trace(run.trace)

    def test_back_ends_run_gracefully(self):
        """Monkey may press BACK and kill the activity; the run ends when
        nothing is enabled."""
        from repro.apps.registry import MusicPlayerApp

        result = MonkeyExplorer(MusicPlayerApp(), budget=30, seed=5).run()
        assert len(result.events_fired) <= 30
