"""Tests for the lifecycle state machines (Figure 8)."""

import pytest

from repro.core.lifecycle_model import (
    ActivityLifecycle,
    LifecycleError,
    ReceiverLifecycle,
    ServiceLifecycle,
    may_happen_after,
)


class TestActivityMachine:
    def test_full_foreground_launch(self):
        m = ActivityLifecycle()
        m.advance_through(
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_RESUME,
            ActivityLifecycle.RUNNING,
        )
        assert m.current == ActivityLifecycle.RUNNING

    def test_finish_sequence(self):
        m = ActivityLifecycle()
        m.advance_through(*ActivityLifecycle.LAUNCH_SEQUENCE)
        m.advance(ActivityLifecycle.RUNNING)
        m.advance_through(*ActivityLifecycle.FINISH_SEQUENCE)
        m.advance(ActivityLifecycle.DESTROYED)
        assert m.is_terminal

    def test_restart_loop(self):
        m = ActivityLifecycle()
        m.advance_through(
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_RESUME,
            ActivityLifecycle.RUNNING,
            ActivityLifecycle.ON_PAUSE,
            ActivityLifecycle.ON_STOP,
            ActivityLifecycle.ON_RESTART,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_RESUME,
            ActivityLifecycle.RUNNING,
        )
        assert m.current == ActivityLifecycle.RUNNING

    def test_pause_resume_cycle(self):
        m = ActivityLifecycle()
        m.advance_through(
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_RESUME,
            ActivityLifecycle.RUNNING,
            ActivityLifecycle.ON_PAUSE,
            ActivityLifecycle.ON_RESUME,
            ActivityLifecycle.RUNNING,
        )

    def test_on_start_may_go_straight_to_stop(self):
        m = ActivityLifecycle()
        m.advance_through(
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_STOP,
        )
        assert m.current == ActivityLifecycle.ON_STOP

    def test_destroy_before_create_rejected(self):
        m = ActivityLifecycle()
        with pytest.raises(LifecycleError):
            m.advance(ActivityLifecycle.ON_DESTROY)

    def test_resume_before_start_rejected(self):
        m = ActivityLifecycle()
        m.advance(ActivityLifecycle.ON_CREATE)
        with pytest.raises(LifecycleError):
            m.advance(ActivityLifecycle.ON_RESUME)

    def test_pause_while_launched_rejected(self):
        m = ActivityLifecycle()
        with pytest.raises(LifecycleError, match="cannot follow"):
            m.advance(ActivityLifecycle.ON_PAUSE)

    def test_history_recorded(self):
        m = ActivityLifecycle()
        m.advance_through(ActivityLifecycle.ON_CREATE, ActivityLifecycle.ON_START)
        assert m.history == [
            ActivityLifecycle.LAUNCHED,
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
        ]

    def test_enabled_callbacks_skip_pure_states(self):
        m = ActivityLifecycle()
        m.advance_through(
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_RESUME,
        )
        # current = onResume; next node is the Running state, looked
        # through to the onPause callback.
        assert m.enabled_callbacks() == [ActivityLifecycle.ON_PAUSE]


class TestMayHappenAfter:
    def test_destroy_reachable_from_create(self):
        assert may_happen_after(
            ActivityLifecycle, ActivityLifecycle.ON_CREATE, ActivityLifecycle.ON_DESTROY
        )

    def test_create_not_reachable_from_destroy(self):
        assert not may_happen_after(
            ActivityLifecycle, ActivityLifecycle.ON_DESTROY, ActivityLifecycle.ON_CREATE
        )

    def test_start_reachable_from_stop_via_restart(self):
        assert may_happen_after(
            ActivityLifecycle, ActivityLifecycle.ON_STOP, ActivityLifecycle.ON_START
        )


class TestServiceMachine:
    def test_start_and_redeliver(self):
        m = ServiceLifecycle()
        m.advance_through(
            ServiceLifecycle.ON_CREATE,
            ServiceLifecycle.ON_START_COMMAND,
            ServiceLifecycle.STARTED,
            ServiceLifecycle.ON_START_COMMAND,
            ServiceLifecycle.STARTED,
            ServiceLifecycle.ON_DESTROY,
            ServiceLifecycle.DESTROYED,
        )
        assert m.is_terminal

    def test_destroy_before_create_rejected(self):
        with pytest.raises(LifecycleError):
            ServiceLifecycle().advance(ServiceLifecycle.ON_DESTROY)


class TestReceiverMachine:
    def test_receive_requires_registration(self):
        m = ReceiverLifecycle()
        with pytest.raises(LifecycleError):
            m.advance(ReceiverLifecycle.ON_RECEIVE)
        m.advance(ReceiverLifecycle.REGISTERED)
        m.advance(ReceiverLifecycle.ON_RECEIVE)
        m.advance(ReceiverLifecycle.REGISTERED)  # stays registered
        m.advance(ReceiverLifecycle.ON_RECEIVE)


class TestRuntimeRespectsLifecycle:
    """The simulated AMS must drive activities through legal sequences."""

    def test_launch_back_history(self):
        from repro.android import AndroidSystem, UIEvent
        from repro.apps.music_player import DwFileAct

        system = AndroidSystem(seed=1)
        system.launch(DwFileAct)
        system.run_to_quiescence()
        (record,) = system.ams.stack
        machine = record.activity.lifecycle
        assert machine.current == ActivityLifecycle.RUNNING
        system.fire(UIEvent("back"))
        system.run_to_quiescence()
        assert machine.current == ActivityLifecycle.DESTROYED
        assert machine.history == [
            ActivityLifecycle.LAUNCHED,
            ActivityLifecycle.ON_CREATE,
            ActivityLifecycle.ON_START,
            ActivityLifecycle.ON_RESUME,
            ActivityLifecycle.RUNNING,
            ActivityLifecycle.ON_PAUSE,
            ActivityLifecycle.ON_STOP,
            ActivityLifecycle.ON_DESTROY,
            ActivityLifecycle.DESTROYED,
        ]

    def test_rotation_destroys_and_relaunches(self):
        from repro.android import AndroidSystem, UIEvent
        from repro.apps.music_player import DwFileAct

        system = AndroidSystem(seed=1)
        system.launch(DwFileAct)
        system.run_to_quiescence()
        first = system.ams.stack[0].activity
        system.fire(UIEvent("rotate"))
        system.run_to_quiescence()
        assert first.lifecycle.current == ActivityLifecycle.DESTROYED
        second = system.screen.foreground
        assert second is not None and second is not first
        assert type(second) is DwFileAct
        assert second.lifecycle.current == ActivityLifecycle.RUNNING
