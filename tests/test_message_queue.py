"""Tests for MessageQueue: FIFO, delays, at-front, cancellation."""

import pytest

from repro.android.message_queue import Message, MessageQueue


def msg(task, when=0, seq=0, at_front=False, delay=None):
    return Message(
        task=task,
        callback=lambda: None,
        target="t",
        posted_by="u",
        when=when,
        seq=seq,
        delay=delay,
        at_front=at_front,
    )


class TestFifo:
    def test_fifo_order_by_sequence(self):
        q = MessageQueue("t")
        q.enqueue(msg("a", seq=1))
        q.enqueue(msg("b", seq=2))
        assert q.dequeue(0).task == "a"
        assert q.dequeue(0).task == "b"

    def test_len_and_bool(self):
        q = MessageQueue("t")
        assert not q and len(q) == 0
        q.enqueue(msg("a", seq=1))
        assert q and len(q) == 1


class TestDelays:
    def test_not_eligible_before_delivery_time(self):
        q = MessageQueue("t")
        q.enqueue(msg("slow", when=100, seq=1, delay=100))
        assert q.eligible(0) is None
        assert q.eligible(99) is None
        assert q.eligible(100).task == "slow"

    def test_next_wakeup(self):
        q = MessageQueue("t")
        assert q.next_wakeup() is None
        q.enqueue(msg("a", when=50, seq=1))
        q.enqueue(msg("b", when=20, seq=2))
        assert q.next_wakeup() == 20

    def test_delivery_order_by_time_then_seq(self):
        q = MessageQueue("t")
        q.enqueue(msg("late", when=100, seq=1))
        q.enqueue(msg("early", when=10, seq=2))
        q.enqueue(msg("early2", when=10, seq=3))
        assert q.dequeue(1000).task == "early"
        assert q.dequeue(1000).task == "early2"
        assert q.dequeue(1000).task == "late"

    def test_dequeue_without_eligible_raises(self):
        q = MessageQueue("t")
        with pytest.raises(LookupError):
            q.dequeue(0)


class TestAtFront:
    def test_at_front_beats_pending(self):
        q = MessageQueue("t")
        q.enqueue(msg("normal", seq=1))
        q.enqueue(msg("urgent", seq=2, at_front=True))
        assert q.dequeue(0).task == "urgent"

    def test_later_barge_goes_first(self):
        q = MessageQueue("t")
        q.enqueue(msg("barge1", seq=1, at_front=True))
        q.enqueue(msg("barge2", seq=2, at_front=True))
        assert q.dequeue(0).task == "barge2"
        assert q.dequeue(0).task == "barge1"


class TestCancellation:
    def test_cancel_removes_from_delivery(self):
        q = MessageQueue("t")
        q.enqueue(msg("doomed", seq=1))
        q.enqueue(msg("kept", seq=2))
        assert q.cancel("doomed")
        assert q.dequeue(0).task == "kept"

    def test_cancel_missing_returns_false(self):
        q = MessageQueue("t")
        assert not q.cancel("ghost")

    def test_cancel_where_predicate(self):
        q = MessageQueue("t")
        q.enqueue(msg("a1", seq=1))
        q.enqueue(msg("a2", seq=2))
        q.enqueue(msg("b", seq=3))
        cancelled = q.cancel_where(lambda m: m.task.startswith("a"))
        assert cancelled == ["a1", "a2"]
        assert [m.task for m in q.pending()] == ["b"]

    def test_cancelled_not_in_wakeup(self):
        q = MessageQueue("t")
        q.enqueue(msg("slow", when=100, seq=1))
        q.cancel("slow")
        assert q.next_wakeup() is None
