"""Live-telemetry tests: histograms, registry, Prometheus exposition,
structured logging, and the ``/metrics`` service surface.

The histogram property tests pin the algebra the cross-process merge
relies on: merging snapshots is associative and commutative (pool
workers land in any order), quantiles are monotone in ``q`` and bounded
by the observed min/max, and a snapshot round-trips losslessly.
"""

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.logging import JsonLogger, NULL_LOGGER
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    SpanHistogramSink,
    bucket_exponent,
    current_registry,
    render_prometheus,
    rss_bytes,
    use_registry,
)
from repro.obs.tracer import Tracer
from repro.obs.top import derive_stats, render_screen


def _filled(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


# -- bucket scheme -------------------------------------------------------------


def test_bucket_exponent_boundaries():
    # 2**(k-1) < v <= 2**k: exact powers of two land in their own bucket.
    assert bucket_exponent(1.0) == 0
    assert bucket_exponent(1.0001) == 1
    assert bucket_exponent(2.0) == 1
    assert bucket_exponent(0.5) == -1
    assert bucket_exponent(0.500001) == 0
    assert bucket_exponent(1e-300) == -30  # clamped
    assert bucket_exponent(1e300) == 30  # clamped
    assert bucket_exponent(0.0) == -30
    assert bucket_exponent(-5.0) == -30


values_strategy = st.lists(
    st.floats(
        min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=60,
)


# -- quantile properties -------------------------------------------------------


@given(values_strategy)
def test_quantile_monotone_and_bounded(values):
    hist = _filled(values)
    qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
    results = hist.quantiles(qs)
    for lo, hi in zip(results, results[1:]):
        assert lo <= hi
    assert results[0] >= min(values)
    assert results[-1] <= max(values)


@given(values_strategy)
def test_quantile_within_bucket_accuracy(values):
    # A bucket spans [2**(k-1), 2**k], so any quantile is within a
    # factor of 2 of the true order statistic (up to interpolation).
    hist = _filled(values)
    ordered = sorted(values)
    true_median = ordered[(len(ordered) - 1) // 2]
    estimate = hist.quantile(0.5)
    assert estimate <= true_median * 2.0 + 1e-12
    assert estimate >= true_median / 2.0 - 1e-12


def test_quantile_empty():
    assert Histogram().quantile(0.5) == 0.0


# -- merge algebra -------------------------------------------------------------


@given(values_strategy, values_strategy)
def test_merge_commutative(a, b):
    ab = _filled(a)
    ab.merge(_filled(b).snapshot())
    ba = _filled(b)
    ba.merge(_filled(a).snapshot())
    assert ab.snapshot()["buckets"] == ba.snapshot()["buckets"]
    assert ab.count == ba.count
    assert math.isclose(ab.sum, ba.sum, rel_tol=1e-9)
    assert ab.min == ba.min and ab.max == ba.max
    for q in (0.5, 0.95, 0.99):
        assert math.isclose(
            ab.quantile(q), ba.quantile(q), rel_tol=1e-9, abs_tol=1e-12
        )


@given(values_strategy, values_strategy, values_strategy)
@settings(max_examples=50)
def test_merge_associative(a, b, c):
    left = _filled(a)
    left.merge(_filled(b).snapshot())
    left.merge(_filled(c).snapshot())
    bc = _filled(b)
    bc.merge(_filled(c).snapshot())
    right = _filled(a)
    right.merge(bc.snapshot())
    assert left.snapshot()["buckets"] == right.snapshot()["buckets"]
    assert left.count == right.count
    assert math.isclose(left.sum, right.sum, rel_tol=1e-9)


@given(values_strategy)
def test_merge_equals_direct_observation(values):
    split = len(values) // 2
    merged = _filled(values[:split])
    merged.merge(_filled(values[split:]).snapshot())
    direct = _filled(values)
    assert merged.snapshot()["buckets"] == direct.snapshot()["buckets"]
    assert merged.min == direct.min and merged.max == direct.max


@given(values_strategy)
def test_snapshot_round_trip(values):
    hist = _filled(values)
    snap = hist.snapshot()
    # The snapshot is picklable-plain: JSON round-trip must be lossless
    # modulo JSON's string keys (merge() re-ints them).
    revived = Histogram.from_snapshot(
        json.loads(json.dumps(snap))
    )
    assert revived.snapshot() == snap
    for q in (0.25, 0.5, 0.95):
        assert revived.quantile(q) == hist.quantile(q)


# -- registry ------------------------------------------------------------------


def test_registry_families_and_labels():
    reg = MetricsRegistry()
    requests = reg.counter("requests_total", "reqs", ("route",))
    requests.labels(route="/a").inc()
    requests.labels(route="/a").inc(2)
    requests.labels(route="/b").inc()
    assert requests.labels(route="/a").value == 3
    with pytest.raises(ValueError):
        requests.labels(method="GET")  # wrong label set
    with pytest.raises(ValueError):
        reg.gauge("requests_total")  # kind mismatch on re-registration


def test_registry_snapshot_merge_order_independent():
    def build(route_hits):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "", ("route",))
        hist = reg.histogram("lat_seconds", "", ("route",))
        gauge = reg.gauge("depth")
        for route, hits in route_hits.items():
            for i in range(hits):
                counter.labels(route=route).inc()
                hist.labels(route=route).observe(0.01 * (i + 1))
        gauge.set(max(route_hits.values(), default=0))
        return reg

    a = build({"/x": 3, "/y": 1})
    b = build({"/x": 2, "/z": 4})

    ab = MetricsRegistry()
    ab.merge(a.snapshot())
    ab.merge(b.snapshot())
    ba = MetricsRegistry()
    ba.merge(b.snapshot())
    ba.merge(a.snapshot())
    assert render_prometheus(ab) == render_prometheus(ba)
    assert ab.counter("hits_total", labelnames=("route",)).labels(route="/x").value == 5
    # numeric gauges merge as max (tracer convention)
    assert ab.gauge("depth").value == 4


def test_null_registry_inert_and_shared():
    instrument = NULL_REGISTRY.counter("x_total")
    assert instrument is NULL_REGISTRY.histogram("y_seconds", labelnames=("a",))
    instrument.inc()
    instrument.observe(1.0)
    instrument.labels(a="b").set(2.0)
    assert NULL_REGISTRY.snapshot()["families"] == []
    assert not NULL_REGISTRY.enabled


def test_current_registry_scoping():
    assert current_registry() is NULL_REGISTRY
    reg = MetricsRegistry()
    with use_registry(reg) as active:
        assert active is reg
        assert current_registry() is reg
    assert current_registry() is NULL_REGISTRY


# -- Prometheus exposition -----------------------------------------------------


def test_render_prometheus_shape():
    reg = MetricsRegistry()
    reg.counter("req_total", "requests", ("code",)).labels(code="200").inc(7)
    reg.gauge("depth", "queue depth").set(3)
    hist = reg.histogram("lat_seconds", "latency")
    hist.observe(0.010)
    hist.observe(0.030)
    hist.observe(0.200)
    text = render_prometheus(reg)
    lines = text.strip().splitlines()
    assert "# TYPE req_total counter" in lines
    assert 'req_total{code="200"} 7' in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 3" in lines
    assert "# TYPE lat_seconds histogram" in lines
    # buckets are cumulative and close with +Inf == count
    buckets = [l for l in lines if l.startswith("lat_seconds_bucket")]
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    assert buckets[-1].startswith('lat_seconds_bucket{le="+Inf"}')
    assert counts[-1] == 3
    assert "lat_seconds_count 3" in lines
    assert any(l.startswith("lat_seconds_sum") for l in lines)
    # no NaNs anywhere in a freshly-scraped registry
    assert "NaN" not in text


def test_render_prometheus_label_escaping():
    reg = MetricsRegistry()
    reg.counter("odd_total", "", ("name",)).labels(name='a"b\\c\nd').inc()
    text = render_prometheus(reg)
    assert '\\"' in text and "\\\\" in text and "\\n" in text


# -- tracer bridge -------------------------------------------------------------


def test_span_histogram_bridge():
    reg = MetricsRegistry()
    tracer = Tracer(sinks=[SpanHistogramSink(reg)])
    for _ in range(5):
        with tracer.span("phase.load"):
            pass
    with pytest.raises(RuntimeError):
        with tracer.span("phase.boom"):
            raise RuntimeError("x")
    spans = reg.histogram("droidracer_span_seconds", labelnames=("span",))
    assert spans.labels(span="phase.load").count == 5
    assert spans.labels(span="phase.boom").count == 1
    errors = reg.counter("droidracer_span_errors_total", labelnames=("span",))
    assert errors.labels(span="phase.boom").value == 1


def test_rss_bytes_positive():
    assert rss_bytes() > 0


# -- structured logging --------------------------------------------------------


def test_json_logger_bind_and_span():
    buf = io.StringIO()
    tracer = Tracer()
    log = JsonLogger(buf, tracer=tracer)
    bound = log.bind(request_id="req-7")
    with tracer.span("service.request"):
        bound.log("request.done", status=200)
    bound.error("job.failed", error="boom")
    records = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert records[0]["event"] == "request.done"
    assert records[0]["request_id"] == "req-7"
    assert records[0]["span"] == "service.request"
    assert records[1]["level"] == "error"
    assert "span" not in records[1]  # outside any span


def test_json_logger_survives_unserializable():
    buf = io.StringIO()
    log = JsonLogger(buf)

    class Defiant:
        def __repr__(self):
            raise RuntimeError("nope")

    log.log("weird", payload=Defiant())
    record = json.loads(buf.getvalue())
    assert record["event"] == "log.unserializable"


def test_null_logger_noops():
    NULL_LOGGER.log("x")
    assert NULL_LOGGER.bind(a=1) is NULL_LOGGER
    NULL_LOGGER.close()


# -- obs top -------------------------------------------------------------------


def _sample_doc():
    reg = MetricsRegistry()
    hist = reg.histogram(
        "droidracer_http_request_seconds", "", ("method", "route")
    )
    for ms in (1, 2, 3, 50):
        hist.labels(method="GET", route="/v1/status").observe(ms / 1e3)
    run = reg.histogram("droidracer_job_run_seconds", "")
    run.observe(0.2)
    reg.gauge("droidracer_rss_bytes").set(64 << 20)
    reg.gauge("droidracer_queue_oldest_age_seconds").set(1.5)
    return {
        "uptime_seconds": 10.0,
        "queue": {"depth": 2, "done": 9, "failed": 1},
        "pool": {"mode": "process", "workers": 4, "inflight": 3, "restarts": 0},
        "counters": {
            "service.requests": 40,
            "service.triage_filtered": 8,
            "service.triage_escalated": 2,
            "service.jobs_completed": 9,
            "service.races_found": 5,
        },
        **reg.to_json_dict(),
    }


def test_derive_stats_static_and_delta():
    doc = _sample_doc()
    stats = derive_stats(doc)
    assert stats["qps"] == pytest.approx(4.0)  # lifetime average
    assert stats["queue_depth"] == 2
    assert stats["utilization"] == pytest.approx(0.75)
    assert stats["triage_filter_rate"] == pytest.approx(0.8)
    assert stats["queue_oldest_seconds"] == pytest.approx(1.5)
    assert stats["request_latency"]["count"] == 4

    later = json.loads(json.dumps(doc))
    later["counters"]["service.requests"] = 50
    delta = derive_stats(later, previous=doc, interval=2.0)
    assert delta["qps"] == pytest.approx(5.0)  # (50-40)/2


def test_render_screen_contains_key_series():
    screen = render_screen(derive_stats(_sample_doc()))
    assert "qps" in screen
    assert "p95" in screen
    assert "depth 2" in screen
    assert "filter rate 80%" in screen
    assert "3/4 busy" in screen


# -- service surface (e2e over a real socket) ----------------------------------


@pytest.fixture
def metrics_server(tmp_path):
    from repro.service import BackgroundServer

    with BackgroundServer(
        store_root=str(tmp_path / "corpus"), jobs=0, queue_depth=16
    ) as server:
        yield server


def test_e2e_metrics_scrape(metrics_server, tmp_path):
    from repro.apps.paper_traces import figure4_trace
    from repro.service import ServiceClient

    client = ServiceClient(metrics_server.base_url)
    trace = figure4_trace()
    payload = client.upload(trace.to_jsonl(), name=trace.name)
    client.wait(payload["job"]["job_id"], timeout=30)

    text = client.metrics_text()
    # required series and label sets
    assert "# TYPE droidracer_http_request_seconds histogram" in text
    assert 'droidracer_http_request_seconds_bucket{method="POST",route="/v1/traces"' in text
    assert "# TYPE droidracer_queue_depth gauge" in text
    assert "# TYPE droidracer_service_triage_filtered_total counter" in text
    assert "# TYPE droidracer_service_triage_escalated_total counter" in text
    assert "droidracer_job_run_seconds_count 1" in text
    assert "droidracer_service_jobs_completed_total 1" in text
    assert "droidracer_rss_bytes" in text
    assert "NaN" not in text

    doc = client.metrics_json()
    assert doc["ok"]
    names = {fam["name"] for fam in doc["families"]}
    assert "droidracer_http_request_seconds" in names
    assert "droidracer_job_wait_seconds" in names
    req = next(
        fam for fam in doc["families"]
        if fam["name"] == "droidracer_http_request_seconds"
    )
    assert req["aggregate"]["count"] >= 2
    assert req["aggregate"]["p95"] >= req["aggregate"]["p50"] >= 0

    # span bridge: merged worker spans show up as histogram series
    span_fam = next(
        fam for fam in doc["families"]
        if fam["name"] == "droidracer_span_seconds"
    )
    span_labels = {child["labels"]["span"] for child in span_fam["children"]}
    assert "service.request" in span_labels
    assert "corpus.trace" in span_labels  # merged from the worker snapshot


def test_e2e_status_corpus_cache(metrics_server):
    from repro.apps.paper_traces import figure4_trace
    from repro.service import ServiceClient

    client = ServiceClient(metrics_server.base_url)
    first = client.status()
    assert first["corpus_age_seconds"] == 0.0
    # within the TTL the corpus payload is served from cache, age grows
    second = client.status()
    assert second["corpus_age_seconds"] >= 0.0
    # ingest invalidates: the fresh trace is immediately visible
    client.upload(figure4_trace().to_jsonl(), name="t", analyze=False)
    third = client.status()
    assert third["corpus_age_seconds"] == 0.0
    assert third["corpus"]["default"]["entries"] == 1


def test_e2e_log_json_correlation(tmp_path):
    from repro.apps.paper_traces import figure4_trace
    from repro.service import BackgroundServer, ServiceClient

    log_path = tmp_path / "events.jsonl"
    with BackgroundServer(
        store_root=str(tmp_path / "corpus"), jobs=0, log_json=str(log_path)
    ) as server:
        client = ServiceClient(server.base_url)
        trace = figure4_trace()
        payload = client.upload(trace.to_jsonl(), name=trace.name)
        client.wait(payload["job"]["job_id"], timeout=30)
    records = [
        json.loads(line) for line in log_path.read_text().splitlines()
    ]
    events = {record["event"] for record in records}
    assert {"service.start", "job.submitted", "job.start", "job.done",
            "request.done", "service.stop"} <= events
    submitted = next(r for r in records if r["event"] == "job.submitted")
    done = next(r for r in records if r["event"] == "job.done")
    # request id propagates from the upload request to the job's events
    assert submitted["request_id"].startswith("req-")
    assert done["request_id"] == submitted["request_id"]
    assert done["job_id"] == submitted["job_id"]
    assert done["trace_digest"] == payload["trace_digest"]
    request_done = next(r for r in records if r["event"] == "request.done")
    assert request_done["route"] == "/v1/traces"
