"""Integration tests for the motivating example (Figures 1–4)."""

import pytest

from repro.android import AndroidSystem, ReplayPolicy, UIEvent
from repro.apps.music_player import DwFileAct, MusicPlayActivity, run_scenario
from repro.core import RaceCategory, detect_races, validate_trace
from repro.core.operations import OpKind


class TestPlayScenario:
    def test_no_races_on_the_flag(self):
        _, trace = run_scenario(press_back=False, seed=2)
        validate_trace(trace)
        report = detect_races(trace)
        flag_races = [
            r for r in report.races if r.field_name == "DwFileAct.isActivityDestroyed"
        ]
        assert flag_races == []

    def test_play_button_enabled_only_after_download(self):
        system, trace = run_scenario(press_back=False, seed=2)
        enables = [
            op.index
            for op in trace
            if op.kind is OpKind.ENABLE and op.task.startswith("click:playBtn")
        ]
        post_exec = [
            info
            for name, info in trace.tasks.items()
            if "onPostExecute" in name and info.begin_index is not None
        ]
        assert enables and post_exec
        # The enable is emitted inside onPostExecute (Figure 3, op 17).
        (enable_idx,), (info,) = enables, post_exec
        assert info.begin_index < enable_idx < info.end_index

    def test_second_activity_launched(self):
        system, trace = run_scenario(press_back=False, seed=2)
        names = [type(r.activity).__name__ for r in system.ams.stack]
        assert "MusicPlayActivity" in names

    def test_progress_updates_ran_on_main(self):
        system, trace = run_scenario(press_back=False, seed=2)
        progress = [
            info
            for name, info in trace.tasks.items()
            if "onProgressUpdate" in name
        ]
        assert len(progress) == 3  # one per download chunk
        assert all(info.thread == "main" for info in progress)


class TestBackScenario:
    def test_exactly_the_two_paper_races(self):
        _, trace = run_scenario(press_back=True, seed=2)
        report = detect_races(trace)
        flag_races = [
            r for r in report.races if r.field_name == "DwFileAct.isActivityDestroyed"
        ]
        categories = sorted(r.category.value for r in flag_races)
        assert categories == ["cross-posted", "multithreaded"]

    def test_race_endpoints_match_paper(self):
        _, trace = run_scenario(press_back=True, seed=2)
        report = detect_races(trace)
        by_cat = {r.category: r for r in report.races}
        mt = by_cat[RaceCategory.MULTITHREADED]
        # background read (doInBackground assert) vs main-thread write
        # (onDestroy) — the paper's (12, 21).
        assert mt.op_i.thread != "main" and mt.op_j.thread == "main"
        cp = by_cat[RaceCategory.CROSS_POSTED]
        # onPostExecute read vs onDestroy write, both on main — (16, 21).
        assert cp.op_i.thread == "main" and cp.op_j.thread == "main"
        assert "onPostExecute" in trace.task_name_of(cp.op_i.index)
        assert "onDestroy" in trace.task_name_of(cp.op_j.index)

    def test_launch_write_is_not_racy(self):
        """(7, 21) is ordered via enable — the paper's precision claim."""
        _, trace = run_scenario(press_back=True, seed=2)
        report = detect_races(trace)
        launch_writes = [
            op.index
            for op in trace
            if op.is_write
            and op.location.endswith("isActivityDestroyed")
            and "LAUNCH" in (trace.task_name_of(op.index) or "")
        ]
        assert launch_writes
        racy_ops = {r.op_i.index for r in report.races} | {
            r.op_j.index for r in report.races
        }
        assert not (set(launch_writes) & racy_ops)


class TestReplay:
    def test_trace_replay_byte_identical(self):
        system, trace = run_scenario(press_back=True, seed=6)
        replay = AndroidSystem(policy=ReplayPolicy(system.env.decisions), name="music-player")
        replay.launch(DwFileAct)
        replay.run_to_quiescence()
        replay.fire(UIEvent("back"))
        replay.run_to_quiescence()
        replayed = replay.finish()
        assert [op.render() for op in trace] == [op.render() for op in replayed]


class TestAcrossSeeds:
    @pytest.mark.parametrize("seed", range(6))
    def test_races_found_regardless_of_schedule(self, seed):
        """The offline analysis sees the races in *every* observed schedule
        — the point of happens-before reasoning over a single trace."""
        _, trace = run_scenario(press_back=True, seed=seed)
        report = detect_races(trace)
        assert report.count(RaceCategory.MULTITHREADED) == 1
        assert report.count(RaceCategory.CROSS_POSTED) == 1
