"""Integration tests for the notes app (ContentProvider substrate demo)."""

import pytest

from repro.android import UIEvent
from repro.apps.notes_app import NotesActivity, NotesApp, NotesProvider
from repro.core import RaceCategory, detect_races, validate_trace
from repro.explorer import event_key, find_event


def run_notes(events, seed=2):
    system = NotesApp().build(seed)
    system.run_to_quiescence()
    for key in events:
        event = find_event(system.enabled_events(), key)
        assert event is not None, key
        system.fire(event)
        system.run_to_quiescence()
    trace = system.finish()
    return system, trace


class TestNotesRaces:
    def test_cursor_adapter_pattern_detected(self):
        """ADD's requery races with the sync service's cross-posted
        refresh — the Messenger CursorAdapter finding (mDataValid etc.)."""
        system, trace = run_notes(["click:addBtn"])
        validate_trace(trace)
        report = detect_races(trace)
        cursor_races = {
            r.field_name: r.category
            for r in report.races
            if r.field_name.startswith("Cursor.")
        }
        assert "Cursor.rows" in cursor_races
        assert "Cursor.dataValid" in cursor_races
        assert cursor_races["Cursor.rows"] is RaceCategory.CROSS_POSTED

    def test_provider_table_race_multithreaded(self):
        """Autosave timer thread vs sync thread on the notes table."""
        system, trace = run_notes([])
        report = detect_races(trace)
        table_races = [
            r for r in report.races if r.field_name == "NotesProvider.notes"
        ]
        assert any(r.category is RaceCategory.MULTITHREADED for r in table_races)

    def test_intent_triggered_resync_adds_races(self):
        system, trace = run_notes(
            ["intent:android.net.conn.CONNECTIVITY_CHANGE", "click:addBtn"]
        )
        report = detect_races(trace)
        assert any(r.field_name == "Cursor.rows" for r in report.races)

    def test_list_rendering_works_in_observed_schedule(self):
        system, trace = run_notes(["click:addBtn", "click:listBtn"])
        activity = system.ams.stack[0].activity
        assert activity.render_log, "list was rendered"
        assert not activity.cursor_errors

    def test_strictmode_flags_save(self):
        system = NotesApp().build(seed=2)
        system.strict_mode.enable()
        system.run_to_quiescence()
        system.fire(UIEvent("click", "saveBtn"))
        system.run_to_quiescence()
        kinds = [v.kind for v in system.strict_mode.violations]
        assert kinds == ["disk-write"]
