"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tracer itself (nesting, exception capture, thread safety,
counters, the gauge max-merge pin), the cross-process snapshot/merge
protocol (spawn and fork start methods), every sink round-trip (JSONL,
summary, Chrome ``trace_event``), the CLI surface (``--metrics`` /
``--trace-out``), the run-history store and regression gate
(:mod:`repro.obs.history` / :mod:`repro.obs.regression`), the static
dashboard, and the central guarantee: instrumentation never changes
race reports.
"""

import json
import multiprocessing
import threading

import pytest

from repro.apps.paper_traces import figure4_trace
from repro.apps.registry import paper_app
from repro.cli import main
from repro.core import detect_races
from repro.corpus import BatchAnalyzer, TraceStore, report_to_json
from repro.obs import (
    NULL_TRACER,
    ChromeTraceSink,
    HistoryStore,
    JsonlSink,
    MemorySink,
    RunRecord,
    SummarySink,
    Tracer,
    chrome_trace_dict,
    combine_digests,
    compare,
    current_tracer,
    gate,
    read_jsonl,
    render_dashboard,
    render_summary,
    report_digest,
    use_tracer,
)
from repro.obs.history import RunRecordError


class TestSpans:
    def test_nesting_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("middle"):
                pass
        by_name = {}
        for record in tracer.spans:
            by_name.setdefault(record.name, []).append(record)
        assert by_name["outer"][0].parent_id is None
        assert by_name["outer"][0].depth == 0
        assert all(r.parent_id == outer.span_id for r in by_name["middle"])
        assert all(r.depth == 1 for r in by_name["middle"])
        assert by_name["inner"][0].parent_id == by_name["middle"][0].span_id
        assert by_name["inner"][0].depth == 2
        # children finish (and are recorded) before their parents
        names = [r.name for r in tracer.spans]
        assert names == ["inner", "middle", "middle", "outer"]

    def test_wall_and_cpu_time_measured(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            sum(range(10_000))
        assert span.wall_seconds > 0
        assert tracer.spans[0].wall_seconds == span.wall_seconds

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (record,) = tracer.spans
        assert record.status == "error"
        assert record.error == "ValueError: boom"

    def test_attributes_at_open_and_mid_flight(self):
        tracer = Tracer()
        with tracer.span("phase", backend="chains") as span:
            span.set(edges=7)
        assert tracer.spans[0].attrs == {"backend": "chains", "edges": 7}

    def test_per_thread_stacks(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker-span"):
                done.wait(5)

        thread = threading.Thread(target=worker, name="obs-worker")
        with tracer.span("main-span"):
            thread.start()
            done.set()
            thread.join()
        records = {r.name: r for r in tracer.spans}
        # the worker's span must not become a child of the main thread's
        assert records["worker-span"].parent_id is None
        assert records["worker-span"].thread == "obs-worker"
        assert records["main-span"].parent_id is None

    def test_counters_and_gauges(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 4)
        tracer.gauge("jobs", 2)
        tracer.gauge("jobs", 8)
        assert tracer.counters == {"hits": 5}
        assert tracer.gauges == {"jobs": 8}

    def test_null_tracer_measures_but_records_nothing(self):
        with NULL_TRACER.span("anything") as span:
            sum(range(1000))
        assert span.wall_seconds > 0
        NULL_TRACER.count("ignored")
        assert not NULL_TRACER.enabled

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        assert current_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER


def _spawn_child(args):
    """Module-level so every multiprocessing start method can pickle it."""
    n = args
    tracer = Tracer()
    with tracer.span("child.work", index=n):
        tracer.count("child.items", n)
        tracer.gauge("child.peak", n)
    return tracer.snapshot()


class TestMerge:
    def test_in_process_merge_remaps_and_reroots(self):
        parent = Tracer()
        child = Tracer()
        with child.span("child.outer"):
            with child.span("child.inner"):
                pass
        with parent.span("parent") as top:
            pass
        parent.merge(child.snapshot(), parent=top)
        records = {r.name: r for r in parent.spans}
        assert records["child.outer"].parent_id == top.span_id
        assert records["child.outer"].depth == top.depth + 1
        assert records["child.inner"].parent_id == records["child.outer"].span_id
        assert records["child.inner"].depth == top.depth + 2
        ids = [r.span_id for r in parent.spans]
        assert len(ids) == len(set(ids)), "merged span ids must stay unique"

    def test_merge_sums_counters(self):
        tracer = Tracer()
        tracer.count("n", 1)
        tracer.merge({"spans": [], "counters": {"n": 2}, "gauges": {"g": 9}})
        assert tracer.counters == {"n": 3}
        assert tracer.gauges == {"g": 9}

    def test_merge_takes_max_of_numeric_gauges(self):
        # Pinned semantics (docs/observability.md): merging snapshots is
        # commutative for numeric gauges — the merged value is the max,
        # regardless of worker arrival order.
        tracer = Tracer()
        tracer.gauge("peak", 5)
        tracer.merge({"spans": [], "counters": {}, "gauges": {"peak": 3}})
        assert tracer.gauges == {"peak": 5}, "a smaller arrival must not regress"
        tracer.merge({"spans": [], "counters": {}, "gauges": {"peak": 9}})
        assert tracer.gauges == {"peak": 9}
        # bools are not numeric for this purpose: last write wins.
        tracer.gauge("flag", True)
        tracer.merge({"spans": [], "counters": {}, "gauges": {"flag": False}})
        assert tracer.gauges["flag"] is False

    def test_merge_non_numeric_gauges_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("mode", "serial")
        tracer.merge({"spans": [], "counters": {}, "gauges": {"mode": "pool"}})
        assert tracer.gauges["mode"] == "pool"

    @pytest.mark.parametrize("method", multiprocessing.get_all_start_methods())
    def test_cross_process_merge(self, method):
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(2) as pool:
            snapshots = pool.map(_spawn_child, [1, 2, 3])
        tracer = Tracer()
        with tracer.span("batch") as top:
            pass
        for snapshot in snapshots:
            tracer.merge(snapshot, parent=top)
        assert tracer.counters["child.items"] == 6
        work = [r for r in tracer.spans if r.name == "child.work"]
        assert len(work) == 3
        assert all(r.parent_id == top.span_id for r in work)
        assert {r.attrs["index"] for r in work} == {1, 2, 3}

    @pytest.mark.parametrize("method", multiprocessing.get_all_start_methods())
    def test_cross_process_gauge_merge_takes_max(self, method):
        # Satellite of the max-merge pin: the same guarantee must hold
        # across real process boundaries under every start method the
        # platform offers (fork and spawn pickle snapshots differently).
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(2) as pool:
            snapshots = pool.map(_spawn_child, [1, 3, 2])
        tracer = Tracer()
        tracer.gauge("child.peak", 0)
        for snapshot in snapshots:
            tracer.merge(snapshot)
        assert tracer.gauges["child.peak"] == 3


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer(sinks=[MemorySink(), JsonlSink(path)])
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        tracer.count("total", 3)
        tracer.gauge("level", "high")
        tracer.finish()

        snapshot = read_jsonl(path)
        assert snapshot["counters"] == {"total": 3}
        assert snapshot["gauges"] == {"level": "high"}
        replay = Tracer()
        replay.merge(snapshot)
        assert [r.to_dict() for r in replay.spans] == [
            r.to_dict() for r in tracer.spans
        ]

    def test_summary_render(self):
        tracer = Tracer()
        with tracer.span("loop"):
            with tracer.span("step"):
                pass
            with tracer.span("step"):
                pass
        tracer.count("edges", 12)
        text = render_summary(tracer.spans, tracer.counters, tracer.gauges)
        lines = text.splitlines()
        assert any("loop" in line and " 1 " in line for line in lines)
        assert any("step" in line and " 2 " in line for line in lines)
        assert any("counter" in line and "edges" in line for line in lines)

    def test_summary_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                sum(range(50_000))
        rows = {row["name"]: row for row in tracer.summary()}
        assert rows["parent"]["self_seconds"] <= rows["parent"]["wall_seconds"]
        assert rows["child"]["self_seconds"] == pytest.approx(
            rows["child"]["wall_seconds"]
        )

    def test_summary_sink_prints_at_close(self):
        import io

        stream = io.StringIO()
        tracer = Tracer(sinks=[SummarySink(stream)])
        with tracer.span("only"):
            pass
        tracer.finish()
        assert "only" in stream.getvalue()

    def test_chrome_trace_structure(self, tmp_path):
        path = str(tmp_path / "trace.json")
        tracer = Tracer(sinks=[MemorySink(), ChromeTraceSink(path)])
        with tracer.span("outer"):
            with tracer.span("inner", n=2):
                pass
        tracer.count("c", 1)
        tracer.finish()

        payload = json.loads((tmp_path / "trace.json").read_text())
        events = payload["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        assert meta and meta[0]["name"] == "thread_name"
        inner = next(e for e in slices if e["name"] == "inner")
        outer = next(e for e in slices if e["name"] == "outer")
        assert inner["args"]["n"] == 2
        assert inner["cat"] == "inner" and outer["cat"] == "outer"
        # the child slice lies within the parent slice on the timeline
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1
        assert payload["otherData"]["counters"] == {"c": 1}

    def test_chrome_trace_separates_process_lanes(self):
        tracer = Tracer()
        with tracer.span("parent") as top:
            pass
        fake_pid_snapshot = {
            "pid": 99999,
            "spans": [
                {
                    "name": "worker",
                    "span_id": 0,
                    "parent_id": None,
                    "depth": 0,
                    "start_wall": tracer.spans[0].start_wall,
                    "wall_seconds": 0.01,
                    "cpu_seconds": 0.01,
                    "pid": 99999,
                    "thread": "MainThread",
                }
            ],
            "counters": {},
            "gauges": {},
        }
        tracer.merge(fake_pid_snapshot, parent=top)
        payload = chrome_trace_dict(tracer.spans)
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2


class TestPipelineInstrumentation:
    def test_detect_emits_span_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            detect_races(figure4_trace())
        names = {r.name for r in tracer.spans}
        assert {"detect", "detect.closure", "detect.enumerate"} <= names
        assert {"closure.graph", "closure.saturate", "closure.round"} <= names
        assert tracer.counters["closure.builds"] == 1
        assert tracer.counters["detect.races"] == 2

    def test_instrumentation_never_changes_reports(self):
        baseline = detect_races(figure4_trace())
        tracer = Tracer()
        with use_tracer(tracer):
            traced = detect_races(figure4_trace())
        assert [r.to_dict() for r in traced.races] == [
            r.to_dict() for r in baseline.races
        ]
        assert traced.racy_pair_count == baseline.racy_pair_count

    def test_analysis_seconds_span_derived_even_untraced(self):
        report = detect_races(figure4_trace())
        assert report.analysis_seconds > 0

    def test_batch_analyzer_merges_worker_spans(self, tmp_path):
        store = TraceStore(tmp_path)
        app = paper_app("Music Player", scale=0.1)
        for seed in range(3):
            _, trace = app.run(seed=seed)
            store.ingest(trace, app="Music Player")
        tracer = Tracer()
        with use_tracer(tracer):
            batch = BatchAnalyzer(store, cache=None, jobs=2).analyze()
        assert not batch.errors()
        per_trace = [r for r in tracer.spans if r.name == "corpus.trace"]
        assert len(per_trace) == len(store)
        (batch_record,) = [r for r in tracer.spans if r.name == "corpus.analyze"]
        assert all(r.parent_id == batch_record.span_id for r in per_trace)
        assert tracer.counters["corpus.traces"] == len(store)
        # each worker's detect tree rode home inside its corpus.trace span
        assert any(r.name == "detect" for r in tracer.spans)
        assert batch.wall_seconds == batch_record.wall_seconds


class TestCliSurface:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "music.jsonl"
        app = paper_app("Music Player", scale=0.15)
        _, trace = app.run(seed=5)
        path.write_text(trace.to_jsonl())
        return str(path)

    def test_json_without_flags_byte_identical(self, trace_path, capsys):
        assert main(["analyze", trace_path, "--json"]) == 0
        out = capsys.readouterr().out
        from repro.core.trace import ExecutionTrace

        report = detect_races(ExecutionTrace.load(trace_path, name=trace_path))
        expected = report_to_json(report)
        # analysis_seconds and the machine-volatile closure memory fields
        # (the ones report digests exclude) vary run to run; compare
        # everything else
        got = json.loads(out)
        want = json.loads(expected)
        got.pop("analysis_seconds"), want.pop("analysis_seconds")
        for doc in (got, want):
            for key in ("memory_bytes", "peak_rss_bytes"):
                doc.get("closure", {}).pop(key, None)
        assert got == want
        assert "metrics" not in got

    def test_json_with_metrics_block(self, trace_path, capsys):
        assert main(["analyze", trace_path, "--json", "--metrics"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        metrics = payload["metrics"]
        assert metrics["counters"]["closure.builds"] == 1
        span_names = {row["name"] for row in metrics["spans"]}
        # the cli.analyze wrapper span is still open while the JSON is
        # printed, so the metrics block holds the pipeline spans only
        assert "detect" in span_names and "trace.load" in span_names
        assert "cli.analyze" not in span_names
        assert "-- metrics" in captured.err
        assert "cli.analyze" in captured.err  # ...but the stderr table has it

    def test_trace_out_valid_chrome_trace_with_coverage(
        self, trace_path, tmp_path, capsys
    ):
        out_path = tmp_path / "pipeline.json"
        assert main(["analyze", trace_path, "--trace-out", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "pipeline trace written" in captured.err

        payload = json.loads(out_path.read_text())
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert slices, "trace must contain complete events"
        top = max(slices, key=lambda e: e["dur"])
        assert top["name"] == "cli.analyze"
        assert top["dur"] > 0
        # the span tree must cover >= 90% of the measured command wall
        # time: the top span's direct children account for the work
        children = [
            e for e in slices if e is not top and e["name"] in ("trace.load", "detect")
        ]
        covered = sum(e["dur"] for e in children)
        assert covered >= 0.9 * top["dur"]
        assert covered <= top["dur"] * 1.01

    def test_metrics_never_changes_cli_report(self, trace_path, capsys):
        assert main(["analyze", trace_path]) == 0
        plain = capsys.readouterr().out
        assert main(["analyze", trace_path, "--metrics"]) == 0
        traced = capsys.readouterr().out
        assert plain == traced

    def test_corpus_analyze_metrics_json(self, trace_path, tmp_path, capsys):
        store_dir = str(tmp_path / "corpus")
        assert main(["corpus", "ingest", trace_path, "--store", store_dir]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "corpus",
                    "analyze",
                    "--store",
                    store_dir,
                    "--json",
                    "--metrics",
                    "--no-cache",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        metrics = payload["metrics"]
        assert metrics["counters"]["corpus.traces"] == 1
        span_names = {row["name"] for row in metrics["spans"]}
        assert "corpus.analyze" in span_names
        assert "corpus.trace" in span_names


class TestDocsCheck:
    def test_extractor_finds_only_runnable_droidracer_lines(self):
        import pathlib
        import sys

        tools = str(pathlib.Path(__file__).resolve().parent.parent / "tools")
        sys.path.insert(0, tools)
        try:
            from docs_check import REQUIRED_COVERAGE, extract_commands
        finally:
            sys.path.remove(tools)
        markdown = "\n".join(
            [
                "```bash",
                "droidracer run Browser --scale 0.2   # comment",
                "pip install -e .",
                "droidracer analyze <your-trace>.jsonl",
                "droidracer table2 --scale 9 # docs-check: skip",
                "```",
                "```",
                "droidracer explore messenger   (untagged block: ignored)",
                "```",
            ]
        )
        assert extract_commands(markdown) == ["droidracer run Browser --scale 0.2"]
        assert "corpus ingest" in REQUIRED_COVERAGE

    def test_repo_docs_cover_every_subcommand(self):
        import pathlib
        import sys

        tools = str(pathlib.Path(__file__).resolve().parent.parent / "tools")
        sys.path.insert(0, tools)
        try:
            from docs_check import DOCUMENTS, REPO, REQUIRED_COVERAGE, extract_commands
        finally:
            sys.path.remove(tools)
        commands = []
        for rel in DOCUMENTS:
            commands.extend(
                extract_commands((REPO / rel).read_text(encoding="utf-8"))
            )
        for sub in REQUIRED_COVERAGE:
            assert any(
                cmd.startswith("droidracer %s" % sub) for cmd in commands
            ), "no documented example for %r" % sub


def _make_record(races=3, wall=1.0, digest_salt="", key_salt=""):
    """A synthetic, fully-populated run record for store/gate tests."""
    report = {
        "races": [{"field": "f%d" % i, "category": "delayed"} for i in range(races)],
        "racy_pair_count": races,
        "trace_length": 100,
        "node_count": 40,
        "salt": digest_salt,
    }
    return RunRecord(
        command="analyze",
        trace_digest="t" * 60 + (key_salt or "0000"),
        config_digest="c" * 64,
        app="Music Player",
        trace_length=100,
        backend="bitmask",
        report_digest=report_digest(report),
        race_count=races,
        racy_pairs=races,
        per_category={"delayed": races},
        spans=[
            {
                "name": "closure.saturate",
                "count": 1,
                "wall_seconds": wall,
                "cpu_seconds": wall,
                "self_seconds": wall,
                "errors": 0,
            },
            {
                "name": "detect",
                "count": 1,
                "wall_seconds": wall * 2,
                "cpu_seconds": wall * 2,
                "self_seconds": wall,
                "errors": 0,
            },
        ],
        counters={"closure.builds": 1},
        gauges={"closure.nodes": 40},
    )


class TestHistoryStore:
    def test_construction_is_inert(self, tmp_path):
        root = tmp_path / "hist"
        store = HistoryStore(str(root))
        assert not root.exists(), "constructing a store must not touch disk"
        assert store.records() == []
        assert not store.exists()

    def test_append_assigns_ids_and_round_trips(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        first = store.append(_make_record())
        second = store.append(_make_record(races=5, digest_salt="x"))
        assert first.run_id and second.run_id
        assert first.run_id != second.run_id
        assert first.environment["python"]
        loaded = store.records()
        assert [r.run_id for r in loaded] == [first.run_id, second.run_id]
        assert loaded[0].to_dict() == first.to_dict()
        index = json.loads((tmp_path / "hist" / "index.json").read_text())
        assert index["runs"] == 2
        assert index["keys"][first.key] == [first.run_id, second.run_id]

    def test_resolve_by_position_and_prefix(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        first = store.append(_make_record())
        second = store.append(_make_record(races=5))
        assert store.resolve("1").run_id == first.run_id
        assert store.resolve("-1").run_id == second.run_id
        assert store.resolve(first.run_id[:8]).run_id == first.run_id
        with pytest.raises(RunRecordError):
            store.resolve("0")
        with pytest.raises(RunRecordError):
            store.resolve("99")
        with pytest.raises(RunRecordError):
            store.resolve("zzzz")

    def test_filters_and_latest_by_key(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        store.append(_make_record())
        newer = store.append(_make_record(races=7))
        other = _make_record(key_salt="ffff")
        other.command = "run"
        other.app = "Browser"
        store.append(other)
        assert len(store.records(command="analyze")) == 2
        assert len(store.records(app="Browser")) == 1
        latest = store.latest_by_key()
        assert len(latest) == 2
        assert latest[newer.key].run_id == newer.run_id

    def test_report_digest_ignores_volatile_fields(self):
        base = {"races": [], "racy_pair_count": 0, "closure": {"memory_bytes": 10}}
        noisy = dict(base, analysis_seconds=9.9, trace_name="elsewhere.jsonl")
        noisy["closure"] = {"memory_bytes": 999}
        assert report_digest(base) == report_digest(noisy)
        changed = dict(base, racy_pair_count=1)
        assert report_digest(base) != report_digest(changed)

    def test_combine_digests_is_order_independent(self):
        assert combine_digests(["a", "b", "c"]) == combine_digests(["c", "a", "b"])
        assert combine_digests(["a", "b"]) != combine_digests(["a", "x"])


class TestRegressionGate:
    def test_compare_flags_significant_spans_only(self):
        base = _make_record(wall=1.0)
        current = _make_record(wall=1.1)
        comparison = compare(base, current, tolerance=0.2)
        assert not comparison.report_drift
        assert all(not d.significant for d in comparison.span_deltas)
        slower = _make_record(wall=2.0)
        comparison = compare(base, slower, tolerance=0.2)
        assert any(
            d.significant and d.name == "closure.saturate"
            for d in comparison.span_deltas
        )
        assert "gate" not in comparison.render()

    def test_compare_detects_report_drift_on_same_key(self):
        base = _make_record()
        drifted = _make_record(races=4, digest_salt="different")
        comparison = compare(base, drifted)
        assert comparison.same_key and comparison.report_drift
        assert "CORRECTNESS DRIFT" in comparison.render()

    def test_compare_never_claims_drift_across_keys(self):
        a = _make_record()
        b = _make_record(digest_salt="other", key_salt="ffff")
        comparison = compare(a, b)
        assert not comparison.same_key
        assert not comparison.report_drift
        assert "not comparable" in comparison.render()

    def test_gate_passes_clean_history(self):
        records = [_make_record(), _make_record()]
        result = gate(records)
        assert result.ok
        assert "PASS" in result.render()

    def test_gate_fails_on_injected_race_count_drift(self):
        records = [_make_record(), _make_record(races=4, digest_salt="oops")]
        result = gate(records)
        assert not result.ok
        assert any(v.kind == "correctness" for v in result.violations)
        assert "FAIL" in result.render()

    def test_gate_fails_on_perf_drift_beyond_threshold(self):
        base = [_make_record(wall=1.0)]
        slow = [_make_record(wall=2.0)]
        result = gate(slow, baseline=base, threshold=0.5)
        assert not result.ok
        assert all(v.kind == "performance" for v in result.violations)
        fast = [_make_record(wall=1.2)]
        assert gate(fast, baseline=base, threshold=0.5).ok

    def test_gate_skips_spans_below_min_seconds(self):
        base = [_make_record(wall=0.001)]
        slow = [_make_record(wall=0.1)]
        assert gate(slow, baseline=base, threshold=0.5, min_seconds=0.05).ok

    def test_gate_reports_unchecked_keys_without_failing(self):
        baseline = [_make_record()]
        current = [_make_record(), _make_record(key_salt="ffff")]
        result = gate(current, baseline=baseline)
        assert result.ok
        assert result.checked_keys == 1
        assert result.unchecked_keys == 1


class TestDashboard:
    def test_render_contains_metrics_and_no_external_deps(self):
        records = [_make_record(wall=1.0), _make_record(races=3, wall=1.2)]
        html = render_dashboard(records, title="test dashboard")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "</svg>" in html
        assert "test dashboard" in html
        for needle in ("saturation", "memory", "race", "Music Player"):
            assert needle in html
        lowered = html.lower()
        assert "http://" not in lowered and "https://" not in lowered
        assert "<script src" not in lowered

    def test_render_empty_history(self):
        html = render_dashboard([], title="empty")
        assert "no runs recorded" in html.lower()

    def test_exploration_panel_from_bench_records(self):
        summary = {
            strategy: {"races_per_100_sequences": per100}
            for strategy, per100 in (
                ("guided", 1600.0),
                ("monkey", 980.0),
                ("dynodroid", 610.0),
                ("dfs", 880.0),
            )
        }
        bench = RunRecord(
            command="bench.exploration",
            trace_digest="e" * 64,
            config_digest="c" * 64,
            race_count=42,
            extra={"exploration": summary},
        )
        html = render_dashboard([bench, _make_record()])
        assert "exploration: races per 100 sequences" in html
        for strategy in ("guided", "monkey", "dynodroid", "dfs"):
            assert ">%s</p>" % strategy in html

    def test_exploration_panel_falls_back_to_payload(self):
        bench = RunRecord(
            command="bench.exploration",
            trace_digest="e" * 64,
            config_digest="c" * 64,
            extra={
                "payload": {
                    "strategies": {
                        "guided": {"races_per_100_sequences": 1500.0}
                    }
                }
            },
        )
        html = render_dashboard([bench])
        assert "exploration: races per 100 sequences" in html
        assert ">guided</p>" in html

    def test_no_exploration_panel_without_bench_records(self):
        html = render_dashboard([_make_record()])
        assert "exploration: races per 100 sequences" not in html
