"""Unit tests for the core trace language (Table 1)."""

import pytest

from repro.core.operations import (
    MalformedOperationError,
    OpKind,
    Operation,
    acquire,
    attachq,
    begin,
    enable,
    end,
    fork,
    join,
    looponq,
    post,
    read,
    release,
    threadexit,
    threadinit,
    write,
)


class TestConstruction:
    def test_all_factories_produce_their_kind(self):
        cases = [
            (threadinit("t"), OpKind.THREAD_INIT),
            (threadexit("t"), OpKind.THREAD_EXIT),
            (fork("t", "u"), OpKind.FORK),
            (join("t", "u"), OpKind.JOIN),
            (attachq("t"), OpKind.ATTACH_Q),
            (looponq("t"), OpKind.LOOP_ON_Q),
            (post("t", "p", "u"), OpKind.POST),
            (begin("t", "p"), OpKind.BEGIN),
            (end("t", "p"), OpKind.END),
            (acquire("t", "l"), OpKind.ACQUIRE),
            (release("t", "l"), OpKind.RELEASE),
            (read("t", "m"), OpKind.READ),
            (write("t", "m"), OpKind.WRITE),
            (enable("t", "p"), OpKind.ENABLE),
        ]
        for op, kind in cases:
            assert op.kind is kind
            assert op.thread == "t"

    def test_post_carries_task_target_delay_front_event(self):
        op = post("t", "p", "u", delay=25, event="click:x")
        assert op.task == "p" and op.target == "u"
        assert op.delay == 25 and op.is_delayed_post
        assert op.event == "click:x"
        front = post("t", "p2", "u", at_front=True)
        assert front.at_front

    def test_missing_task_rejected(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.BEGIN, "t")

    def test_missing_thread_rejected(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.READ, "", location="m")

    def test_missing_target_rejected(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.FORK, "t")

    def test_missing_lock_rejected(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.ACQUIRE, "t")

    def test_missing_location_rejected(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.WRITE, "t")

    def test_delay_only_on_post(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.READ, "t", location="m", delay=5)

    def test_negative_delay_rejected(self):
        with pytest.raises(MalformedOperationError):
            post("t", "p", "u", delay=-1)

    def test_at_front_only_on_post(self):
        with pytest.raises(MalformedOperationError):
            Operation(OpKind.BEGIN, "t", task="p", at_front=True)


class TestConflicts:
    def test_write_write_same_location_conflicts(self):
        assert write("t", "m").conflicts_with(write("u", "m"))

    def test_read_write_conflicts_both_directions(self):
        assert read("t", "m").conflicts_with(write("u", "m"))
        assert write("t", "m").conflicts_with(read("u", "m"))

    def test_read_read_does_not_conflict(self):
        assert not read("t", "m").conflicts_with(read("u", "m"))

    def test_different_locations_do_not_conflict(self):
        assert not write("t", "m").conflicts_with(write("u", "n"))

    def test_non_memory_ops_never_conflict(self):
        assert not begin("t", "p").conflicts_with(write("t", "m"))


class TestRendering:
    def test_paper_syntax(self):
        assert post("t0", "LAUNCH_ACTIVITY", "t1").render() == "post(t0,LAUNCH_ACTIVITY,t1)"
        assert begin("t1", "p").render() == "begin(t1,p)"
        assert fork("t1", "t2").render() == "fork(t1,t2)"
        assert read("t2", "obj.f").render() == "read(t2,obj.f)"
        assert enable("t1", "onDestroy").render() == "enable(t1,onDestroy)"
        assert attachq("t1").render() == "attachQ(t1)"

    def test_delayed_post_rendering_includes_delay(self):
        assert "delay=10" in post("t", "p", "u", delay=10).render()

    def test_at_front_rendering(self):
        assert "at_front" in post("t", "p", "u", at_front=True).render()


class TestPredicates:
    def test_memory_access_predicates(self):
        r, w = read("t", "m"), write("t", "m")
        assert r.is_memory_access and r.is_read and not r.is_write
        assert w.is_memory_access and w.is_write and not w.is_read
        assert not begin("t", "p").is_memory_access

    def test_zero_delay_post_is_not_delayed(self):
        assert not post("t", "p", "u", delay=0).is_delayed_post
