"""Tests for SharedPreferences and the timeline renderers."""

import pytest

from repro.android import (
    Activity,
    AndroidSystem,
    Ctx,
    UIEvent,
    get_shared_preferences,
)
from repro.bench.timeline import render_race_context, render_task_summary, render_timeline
from repro.core import HappensBefore, detect_races, validate_trace
from repro.core.race_detector import RaceDetector


class PrefsActivity(Activity):
    def on_create(self, ctx: Ctx) -> None:
        prefs = get_shared_preferences(self.system, "settings")
        prefs.edit().put("launches", 1).apply(ctx)
        self.register_button(ctx, "applyBtn", on_click=self.on_apply)
        self.register_button(ctx, "commitBtn", on_click=self.on_commit)
        self.register_button(ctx, "readBtn", on_click=self.on_read)

    def on_apply(self, ctx: Ctx) -> None:
        prefs = get_shared_preferences(self.system, "settings")
        count = prefs.get(ctx, "launches", 0)
        prefs.edit().put("launches", count + 1).apply(ctx)

    def on_commit(self, ctx: Ctx) -> None:
        prefs = get_shared_preferences(self.system, "settings")
        prefs.edit().put("theme", "dark").commit(ctx)

    def on_read(self, ctx: Ctx) -> None:
        prefs = get_shared_preferences(self.system, "settings")
        self.last_theme = prefs.get(ctx, "theme")


def run_prefs(events, seed=0, strict=False):
    system = AndroidSystem(seed=seed)
    if strict:
        system.strict_mode.enable()
    system.launch(PrefsActivity)
    system.run_to_quiescence()
    for event in events:
        system.fire(event)
        system.run_to_quiescence()
    return system, system.finish()


class TestSharedPreferences:
    def test_get_put_roundtrip(self):
        system, trace = run_prefs([UIEvent("click", "readBtn")])
        validate_trace(trace)
        prefs = get_shared_preferences(system, "settings")
        assert prefs._values["launches"] == 1

    def test_apply_commits_on_queued_work_thread(self):
        system, trace = run_prefs([])
        assert "queued-work" in trace.threads
        disk_writes = [
            op
            for op in trace
            if op.is_write and op.location.endswith("diskState")
        ]
        assert any(op.thread == "queued-work" for op in disk_writes)

    def test_commit_blocks_on_calling_thread_and_strictmode_flags_it(self):
        system, trace = run_prefs([UIEvent("click", "commitBtn")], strict=True)
        kinds = [v.kind for v in system.strict_mode.violations]
        assert "disk-write" in kinds

    def test_concurrent_applies_race_on_disk_state(self):
        """Two apply() disk commits from different contexts race with a
        commit() disk write — the classic SharedPreferences hazard."""
        system, trace = run_prefs(
            [UIEvent("click", "applyBtn"), UIEvent("click", "commitBtn")]
        )
        report = detect_races(trace)
        disk_races = [
            r for r in report.races if r.field_name == "SharedPreferences.diskState"
        ]
        assert disk_races

    def test_same_instance_per_file(self):
        system, _ = run_prefs([])
        a = get_shared_preferences(system, "settings")
        b = get_shared_preferences(system, "settings")
        c = get_shared_preferences(system, "other")
        assert a is b and a is not c

    def test_editor_remove_and_clear(self):
        system, _ = run_prefs([])
        prefs = get_shared_preferences(system, "settings")
        ctx = system.env.main_ctx
        editor = prefs.edit().put("a", 1).put("b", 2)
        editor._merge(ctx)
        prefs.edit().remove("a")._merge(ctx)
        assert "a" not in prefs._values and prefs._values["b"] == 2
        prefs.edit().clear()._merge(ctx)
        assert prefs._values == {}


class TestTimelineRendering:
    @pytest.fixture(scope="class")
    def fig4(self):
        from repro.apps.paper_traces import figure4_trace

        trace = figure4_trace()
        detector = RaceDetector(trace)
        detector.detect()
        return trace, detector.hb

    def test_timeline_columns_per_thread(self, fig4):
        trace, _ = fig4
        text = render_timeline(trace)
        lines = text.splitlines()
        assert "t0" in lines[0] and "t1" in lines[0] and "t2" in lines[0]
        # The write in LAUNCH_ACTIVITY sits in t1's column.
        write_line = next(l for l in lines if "write(t1" in l)
        assert write_line.index("write") > 30

    def test_timeline_focus_marks_accesses(self, fig4):
        trace, _ = fig4
        text = render_timeline(trace, focus_location="DwFileAct.isActivityDestroyed")
        assert text.count(" *") == 4  # 2 writes + 2 reads on the flag

    def test_timeline_truncation(self, fig4):
        trace, _ = fig4
        text = render_timeline(trace, max_ops=5)
        assert "more operations" in text

    def test_task_summary(self, fig4):
        trace, _ = fig4
        text = render_task_summary(trace)
        assert "LAUNCH_ACTIVITY" in text
        assert "onDestroy" in text and "event=onDestroy" in text

    def test_race_context_matrix(self, fig4):
        trace, hb = fig4
        text = render_race_context(trace, hb, "DwFileAct.isActivityDestroyed")
        assert "RACE" in text
        assert "≺" in text

    def test_race_context_no_accesses(self, fig4):
        trace, hb = fig4
        assert "no accesses" in render_race_context(trace, hb, "Ghost.x")
