"""Property-based tests (hypothesis) on the core data structures and on
whole-system invariants driven by randomly generated applications."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.android import (
    AndroidEnv,
    Ctx,
    RandomPolicy,
    ReplayPolicy,
    SharedObject,
    looper_entry,
)
from repro.android.message_queue import Message, MessageQueue
from repro.core import HappensBefore, detect_races, validate_trace
from repro.core.baselines import EVENT_DRIVEN_ONLY, NAIVE_COMBINED
from repro.core.graph import bits
from repro.core.happens_before import ANDROID_HB
from repro.core.operations import OpKind
from repro.core.trace import ExecutionTrace

SUPPRESS = [HealthCheck.too_slow]


class TestBitsProperties:
    @given(st.integers(min_value=0, max_value=2**512 - 1))
    def test_bits_roundtrip(self, mask):
        assert sum(1 << b for b in bits(mask)) == mask

    @given(st.integers(min_value=0, max_value=2**512 - 1))
    def test_bits_sorted_unique(self, mask):
        out = bits(mask)
        assert out == sorted(set(out))


class TestMessageQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),  # delay
                st.booleans(),  # at_front
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_delivery_respects_time_and_fifo(self, posts):
        queue = MessageQueue("t")
        for seq, (delay, at_front) in enumerate(posts, start=1):
            if at_front:
                delay = 0  # postAtFrontOfQueue takes no delay
            queue.enqueue(
                Message(
                    task="p%d" % seq,
                    callback=lambda: None,
                    target="t",
                    posted_by="u",
                    when=delay,
                    seq=seq,
                    delay=delay or None,
                    at_front=at_front,
                )
            )
        clock = 0
        delivered = []
        while queue:
            message = queue.eligible(clock)
            if message is None:
                clock = queue.next_wakeup()
                continue
            delivered.append(queue.dequeue(clock))
        # All messages delivered exactly once.
        assert sorted(m.task for m in delivered) == sorted(
            "p%d" % i for i in range(1, len(posts) + 1)
        )
        # Among non-barging messages, delivery is (when, seq)-monotone.
        plain = [m for m in delivered if not m.at_front]
        keys = [(m.when, m.seq) for m in plain]
        assert keys == sorted(keys)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
    def test_next_wakeup_is_minimum(self, whens):
        queue = MessageQueue("t")
        for seq, when in enumerate(whens, start=1):
            queue.enqueue(
                Message("p%d" % seq, lambda: None, "t", "u", when=when, seq=seq)
            )
        assert queue.next_wakeup() == min(whens)


def build_random_app(env: AndroidEnv, rng: random.Random):
    """Construct a small random application exercising forks, loopers,
    posts (plain/delayed/at-front), locks and shared accesses."""
    objects = [SharedObject(env, "Obj") for _ in range(3)]
    locks = [env.new_lock() for _ in range(2)]
    n_threads = rng.randint(1, 3)
    n_posts = rng.randint(1, 5)

    def task_body(obj, field, lock):
        def body():
            ctx = env.current_ctx
            if lock is not None:
                return locked_body(ctx)
            ctx.write(obj, field, 1)
            ctx.read(obj, field)

        def locked_body(ctx):
            yield ctx.acquire(lock)
            ctx.write(obj, field, 1)
            ctx.release(lock)

        return body

    def worker(obj, field, lock, post_back):
        def entry(ctx: Ctx):
            if lock is not None:
                yield ctx.acquire(lock)
            ctx.write(obj, field, 2)
            if lock is not None:
                ctx.release(lock)
            yield
            if post_back:
                ctx.post(task_body(obj, field, None), name="callback")

        return entry

    def handoff_worker(obj, field, lock):
        def entry(ctx: Ctx):
            yield ctx.acquire(lock)
            ctx.write(obj, field, 3)
            ctx.release(lock)

        return entry

    def forker_task(obj, field, lock):
        # A looper task that forks a lock hand-off thread: later
        # FIFO-ordered tasks acquire the lock, so the forked thread's
        # post-round closure gains reach this task only through TRANS-MT
        # — the class of topology the incremental dirty frontier of
        # ChainIndex.saturate_delta must propagate transitively.
        def body():
            ctx = env.current_ctx
            ctx.write(obj, field, 2)
            ctx.fork(handoff_worker(obj, field, lock), name="hand")

        return body

    def acquirer_task(obj, field, lock):
        def body():
            ctx = env.current_ctx

            def locked(ctx):
                yield ctx.acquire(lock)
                ctx.write(obj, field, 4)
                ctx.release(lock)

            return locked(ctx)

        return body

    def relay_task(obj, field, target):
        def body():
            ctx = env.current_ctx
            env.ensure_looper_ready(target)
            ctx.post(task_body(obj, field, None), name="relay", to=target)

        return body

    def handoff_driver(obj, field, lock, target, at_front):
        # Runs on a plain forked thread: NO-Q-PO program-orders its
        # posts, so FIFO relates the acquirer and relay tasks in the
        # first outer round.  (Posts made from the main looper's setup
        # action land after loopOnQ outside any task and are never
        # program-ordered, so they cannot arm FIFO at all.)
        def entry(ctx: Ctx):
            if at_front:
                ctx.post_at_front(forker_task(obj, field, lock), name="forker")
            else:
                ctx.post_delayed(forker_task(obj, field, lock), 25, name="forker")
            ctx.post(acquirer_task(obj, field, lock), name="handoff-acq")
            ctx.post(relay_task(obj, field, target), name="handoff-relay")

        return entry

    def setup():
        ctx = env.current_ctx
        for i in range(n_threads):
            obj = rng.choice(objects)
            lock = rng.choice(locks + [None])
            ctx.fork(
                worker(obj, "f%d" % rng.randint(0, 2), lock, rng.random() < 0.5),
                name="w%d" % i,
            )
        for i in range(n_posts):
            obj = rng.choice(objects)
            delay = rng.choice([None, None, 10, 50])
            at_front = delay is None and rng.random() < 0.1
            env.post_message(
                env.main,
                env.main,
                task_body(obj, "f%d" % rng.randint(0, 2), rng.choice(locks + [None])),
                "job",
                delay=delay,
                at_front=at_front,
            )
        if rng.random() < 0.5:
            # Fork/lock hand-off from inside a looper task, with a relay
            # into a second looper: the forker is posted at the front (or
            # delayed), so FIFO never orders it against the acquirer and
            # relay tasks directly, and the orderings it does gain arrive
            # only through the forked thread's lock edge.
            obj = rng.choice(objects)
            field = "h%d" % rng.randint(0, 2)
            lock = rng.choice(locks)
            target = (
                ctx.fork(looper_entry, name="second-looper")
                if rng.random() < 0.7
                else env.main
            )
            at_front = rng.random() < 0.7
            ctx.fork(
                handoff_driver(obj, field, lock, target, at_front), name="hdrv"
            )

    env.main.push_action(setup)


def run_random_app(seed: int) -> AndroidEnv:
    rng = random.Random(seed)
    env = AndroidEnv(RandomPolicy(seed), name="random-app")
    build_random_app(env, rng)
    env.run()
    env.shutdown()
    return env


class TestRandomAppInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
    def test_generated_traces_satisfy_the_semantics(self, seed):
        env = run_random_app(seed)
        validate_trace(env.build_trace())

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    def test_coalescing_preserves_detection(self, seed):
        trace = run_random_app(seed).build_trace()
        key = lambda rep: sorted((r.location, r.category.value) for r in rep.races)
        assert key(detect_races(trace, coalesce=True)) == key(
            detect_races(trace, coalesce=False)
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    def test_hb_edges_point_forward_and_are_antisymmetric(self, seed):
        trace = run_random_app(seed).build_trace()
        hb = HappensBefore(trace)
        graph = hb.graph
        for i in range(len(graph)):
            for j in bits(graph.hb_row(i)):
                assert i < j
                assert not graph.ordered(j, i) or i == j

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    def test_android_hb_contains_event_only_hb(self, seed):
        """The paper's relation extends the event-driven relation with
        fork/join/lock edges, so it orders strictly more pairs; hence its
        racy-pair set is a subset."""
        trace = run_random_app(seed).build_trace()
        android = HappensBefore(trace, config=ANDROID_HB)
        event_only = HappensBefore(trace, config=EVENT_DRIVEN_ONLY)
        n = min(len(trace), 120)
        for i in range(n):
            for j in range(i + 1, n):
                if event_only.ordered(i, j):
                    assert android.ordered(i, j), (i, j)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    def test_naive_combination_contains_android_hb(self, seed):
        """Unrestricted transitivity + same-thread lock edges only ever add
        orderings — the android relation is contained in the naive one (so
        naive misses races; it never finds more)."""
        trace = run_random_app(seed).build_trace()
        android = HappensBefore(trace, config=ANDROID_HB)
        naive = HappensBefore(trace, config=NAIVE_COMBINED)
        n = min(len(trace), 120)
        for i in range(n):
            for j in range(i + 1, n):
                if android.ordered(i, j):
                    assert naive.ordered(i, j), (i, j)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
    def test_replay_reproduces_trace(self, seed):
        original = run_random_app(seed)
        rng = random.Random(seed)
        env = AndroidEnv(ReplayPolicy(original.decisions), name="random-app")
        build_random_app(env, rng)
        env.run()
        env.shutdown()
        assert [op.render() for op in env.ops] == [
            op.render() for op in original.ops
        ]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
    def test_serialization_roundtrip(self, seed):
        trace = run_random_app(seed).build_trace()
        restored = ExecutionTrace.from_jsonl(trace.to_jsonl())
        assert [op.render() for op in restored] == [op.render() for op in trace]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=SUPPRESS)
    def test_detection_deterministic(self, seed):
        trace = run_random_app(seed).build_trace()
        a = detect_races(trace)
        b = detect_races(trace)
        assert [str(r) for r in a.races] == [str(r) for r in b.races]


class TestLifecycleProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_walks_respect_figure8(self, seed):
        """Random legal walks never reach onDestroy before onCreate, never
        revisit onCreate, and only terminate in Destroyed."""
        from repro.core.lifecycle_model import ActivityLifecycle

        rng = random.Random(seed)
        machine = ActivityLifecycle()
        for _ in range(30):
            nxt = machine.successors()
            if not nxt:
                break
            machine.advance(rng.choice(nxt))
        history = machine.history
        if ActivityLifecycle.ON_DESTROY in history:
            assert history.index(ActivityLifecycle.ON_CREATE) < history.index(
                ActivityLifecycle.ON_DESTROY
            )
        assert history.count(ActivityLifecycle.ON_CREATE) <= 1
        if machine.is_terminal:
            assert machine.current == ActivityLifecycle.DESTROYED


class TestJsonlRoundTripProperties:
    """Satellite: the JSONL round-trip over structured traces covering
    every OpKind — including at_front posts and non-ASCII locations."""

    # Non-empty location/event strings over a deliberately wide alphabet:
    # ASCII, combining marks, CJK, emoji, and the field separator dots.
    _names = st.text(
        alphabet=st.characters(
            codec="utf-8", exclude_characters="\x00"
        ),
        min_size=1,
        max_size=12,
    ).filter(lambda s: s.strip())

    @staticmethod
    def _full_coverage_trace(locations, delays, at_fronts, events):
        """A valid trace exercising every op kind with drawn payloads."""
        from repro.core.operations import (
            acquire,
            attachq,
            begin,
            enable,
            end,
            fork,
            join,
            looponq,
            post,
            read,
            release,
            threadexit,
            threadinit,
            write,
        )
        from repro.core.trace import TraceBuilder

        b = TraceBuilder("prop")
        b.extend([threadinit("t0"), attachq("t0"), looponq("t0")])
        b.extend([fork("t0", "w"), threadinit("w")])
        b.extend(
            [
                acquire("w", "L"),
                write("w", locations[0]),
                release("w", "L"),
                threadexit("w"),
            ]
        )
        tasks = []
        for k, (delay, at_front, event) in enumerate(zip(delays, at_fronts, events)):
            name = b.unique_task("p")
            tasks.append(name)
            b.add(enable("t0", name))
            b.add(
                post(
                    "t0",
                    name,
                    "t0",
                    delay=delay,
                    at_front=at_front,
                    event=event,
                )
            )
        for k, name in enumerate(tasks):
            b.add(begin("t0", name))
            b.add(read("t0", locations[k % len(locations)]))
            b.add(write("t0", locations[(k + 1) % len(locations)]))
            b.add(end("t0", name))
        b.add(join("t0", "w"))
        b.add(threadexit("t0"))
        return b.build()

    @given(
        locations=st.lists(_names, min_size=1, max_size=4, unique=True),
        payloads=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
                st.booleans(),
                st.one_of(st.none(), _names),
            ),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=60, deadline=None, suppress_health_check=SUPPRESS)
    def test_roundtrip_identity(self, locations, payloads):
        from repro.core.trace import operation_to_record

        delays = [p[0] for p in payloads]
        at_fronts = [p[1] for p in payloads]
        events = [p[2] for p in payloads]
        trace = self._full_coverage_trace(locations, delays, at_fronts, events)
        kinds = {op.kind for op in trace}
        assert kinds == set(OpKind)  # every op kind is exercised

        restored = ExecutionTrace.from_jsonl(trace.to_jsonl())
        assert [operation_to_record(op) for op in restored] == [
            operation_to_record(op) for op in trace
        ]
        assert restored.canonical_digest() == trace.canonical_digest()
        # a second round-trip is byte-identical (canonical form is a fixpoint)
        assert restored.to_jsonl() == trace.to_jsonl()
