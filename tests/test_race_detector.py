"""Tests for the race detection algorithm (§4.3)."""

import pytest

from repro.core.operations import (
    attachq,
    begin,
    enable,
    end,
    fork,
    join,
    looponq,
    post,
    read,
    threadexit,
    threadinit,
    write,
)
from repro.core.race_detector import RaceDetector, detect_races
from repro.core.trace import ExecutionTrace
from repro.core.classification import RaceCategory


def trace_of(*ops, name="t"):
    return ExecutionTrace(list(ops), name=name)


class TestBasicDetection:
    def test_unsynchronized_cross_thread_writes_race(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                write("t", "O@1.x"),
                write("u", "O@1.x"),
            )
        )
        assert len(report.races) == 1
        race = report.races[0]
        assert race.location == "O@1.x"
        assert race.field_name == "O.x"
        assert race.category is RaceCategory.MULTITHREADED
        assert not race.is_single_threaded

    def test_read_read_is_not_a_race(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                read("t", "O@1.x"),
                read("u", "O@1.x"),
            )
        )
        assert report.races == []

    def test_fork_edge_prevents_race(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                write("t", "O@1.x"),
                fork("t", "u"),
                threadinit("u"),
                write("u", "O@1.x"),
            )
        )
        assert report.races == []

    def test_join_edge_prevents_race(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                fork("t", "u"),
                threadinit("u"),
                write("u", "O@1.x"),
                threadexit("u"),
                join("t", "u"),
                write("t", "O@1.x"),
            )
        )
        assert report.races == []

    def test_same_task_accesses_never_race(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                post("t", "p", "t"),
                begin("t", "p"),
                write("t", "O@1.x"),
                write("t", "O@1.x"),
                end("t", "p"),
            )
        )
        assert report.races == []


class TestDeduplication:
    def test_one_report_per_location_and_category(self):
        # Three unordered tasks all writing the same location: several racy
        # pairs, one report (paper: 'reports any one of them').
        ops = [
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            threadinit("u"),
            threadinit("v"),
            threadinit("w"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            post("w", "p3", "t"),
            begin("t", "p1"),
            write("t", "O@1.x"),
            end("t", "p1"),
            begin("t", "p2"),
            write("t", "O@1.x"),
            end("t", "p2"),
            begin("t", "p3"),
            write("t", "O@1.x"),
            end("t", "p3"),
        ]
        report = detect_races(trace_of(*ops))
        assert len(report.races) == 1
        assert report.racy_pair_count == 3

    def test_distinct_objects_of_same_class_reported_separately(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                write("t", "O@1.x"),
                write("t", "O@2.x"),
                write("u", "O@1.x"),
                write("u", "O@2.x"),
            )
        )
        assert len(report.races) == 2
        assert {r.location for r in report.races} == {"O@1.x", "O@2.x"}
        assert report.racy_fields() == ["O.x"]


class TestRepresentativePair:
    def test_representative_pair_includes_a_write(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                read("t", "O@1.x"),
                write("u", "O@1.x"),
            )
        )
        (race,) = report.races
        assert race.op_i.is_read and race.op_j.is_write

    def test_write_chosen_from_first_node_when_present(self):
        report = detect_races(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                write("t", "O@1.x"),
                read("u", "O@1.x"),
            )
        )
        (race,) = report.races
        assert race.op_i.is_write and race.op_j.is_read


class TestCancellation:
    def test_cancelled_task_posts_removed_before_analysis(self):
        ops = [
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            post("t", "zombie", "t"),  # cancelled, never begun
            post("t", "p", "t"),
            begin("t", "p"),
            write("t", "O@1.x"),
            end("t", "p"),
        ]
        detector = RaceDetector(trace_of(*ops), cancelled_tasks=["zombie"])
        report = detector.detect()
        assert "zombie" not in detector.trace.tasks
        assert report.races == []


class TestReport:
    def test_report_metadata(self):
        from repro.apps.paper_traces import figure4_trace

        report = detect_races(figure4_trace())
        assert report.trace_name == "figure4"
        assert report.trace_length == len(figure4_trace())
        assert 0 < report.node_count <= report.trace_length
        assert report.analysis_seconds >= 0
        assert report.count(RaceCategory.MULTITHREADED) == 1
        assert report.count(RaceCategory.CROSS_POSTED) == 1
        assert "figure4" in report.summary()
        by_cat = report.by_category()
        assert len(by_cat[RaceCategory.MULTITHREADED]) == 1

    def test_races_sorted_by_position(self):
        from repro.apps.paper_traces import figure4_trace

        report = detect_races(figure4_trace())
        positions = [(r.op_i.index, r.op_j.index) for r in report.races]
        assert positions == sorted(positions)

    def test_race_describe_mentions_ops(self):
        from repro.apps.paper_traces import figure4_trace

        report = detect_races(figure4_trace())
        text = str(report.races[0])
        assert "race on" in text and "read" in text and "write" in text


class TestEnableSuppressesFalsePositive:
    def test_lifecycle_ordering_via_enable(self):
        """The Figure 4 (7,21) pair must NOT be reported."""
        from repro.apps.paper_traces import figure4_trace

        report = detect_races(figure4_trace())
        launch_write_races = [
            r for r in report.races if 7 in (r.op_i.index, r.op_j.index)
        ]
        assert launch_write_races == []
