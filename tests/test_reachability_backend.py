"""Differential tests: the ``chains`` reachability backend is a
*memory/performance knob* — for every trace and every configuration it
must agree with the dense ``bitmask`` backend on every ordering query,
derive the same rule edges in the same outer rounds, and report the same
races in the same order.

Inputs mirror :mod:`tests.test_incremental_closure`: whole random
applications from :func:`tests.test_property.run_random_app` (forks,
loopers, delayed/at-front posts, locks) and the adversarial multi-round
ladders of :mod:`repro.apps.ladder` — the latter stress the chains
backend's deferred-seed round discipline and delta re-closure across
many FIFO/NOPRE rounds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.ladder import ladder_trace, lock_handoff_trace, wide_trace
from repro.core import (
    BACKEND_BITMASK,
    BACKEND_CHAINS,
    HappensBefore,
    KERNEL_AUTO,
    KERNEL_PYTHON,
    KERNEL_WORDS,
    SAT_FULL,
    SAT_INCREMENTAL,
    detect_races,
)
from repro.core.baselines import ALL_CONFIGS
from repro.core.graph import bits, iter_bits
from repro.core.race_detector import (
    ENUM_BATCHED,
    ENUM_PAIRWISE,
    DetectorConfig,
    RaceDetector,
    RaceReport,
)
from repro.core import reachability
from repro.core.reachability import ChainIndex
from tests.test_property import run_random_app

SUPPRESS = [HealthCheck.too_slow]


def report_key(report):
    """Everything observable about a report except timing and the
    backend-specific closure statistics."""
    return (
        report.racy_pair_count,
        report.node_count,
        report.trace_length,
        [race.to_dict() for race in report.races],
    )


def assert_same_relation(trace, config, coalesce, saturation=SAT_INCREMENTAL):
    """Full ordered-matrix, rule-statistics, and edge-count agreement."""
    bit = HappensBefore(
        trace, config, coalesce=coalesce, saturation=saturation
    )
    chain = HappensBefore(
        trace,
        config,
        coalesce=coalesce,
        saturation=saturation,
        backend=BACKEND_CHAINS,
    )
    n = len(bit.graph)
    assert len(chain.graph) == n
    for i in range(n):
        assert bit.graph.hb_row(i) == chain.graph.hb_row(i), "row %d differs" % i
    for stat in (
        "st_edges",
        "mt_edges",
        "fifo_edges",
        "nopre_edges",
        "outer_iterations",
    ):
        assert getattr(bit.stats, stat) == getattr(chain.stats, stat), stat
    assert chain.stats.backend == BACKEND_CHAINS
    assert chain.stats.chain_count == chain.graph.reach.chain_count > 0
    return chain


class TestClosureEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_all_presets(self, seed):
        trace = run_random_app(seed).build_trace()
        for config in ALL_CONFIGS.values():
            for coalesce in (True, False):
                assert_same_relation(trace, config, coalesce)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_full_saturation(self, seed):
        # The chains backend also honours the saturation knob (full
        # re-sweep vs delta re-closure after each round).
        trace = run_random_app(seed).build_trace()
        for config in ALL_CONFIGS.values():
            assert_same_relation(trace, config, True, saturation=SAT_FULL)

    @pytest.mark.parametrize("preset", sorted(ALL_CONFIGS))
    def test_ladder_all_presets(self, preset):
        assert_same_relation(ladder_trace(6, 3), ALL_CONFIGS[preset], True)

    @pytest.mark.parametrize("preset", sorted(ALL_CONFIGS))
    def test_ladder_uncoalesced_with_body(self, preset):
        trace = ladder_trace(4, 2, body=3)
        assert_same_relation(trace, ALL_CONFIGS[preset], False)

    def test_ladder_needs_many_outer_rounds(self):
        # The equivalence above is only meaningful if the chains delta
        # path really runs multiple rounds: ladders need ~one per level.
        hb = HappensBefore(ladder_trace(6, 3), backend=BACKEND_CHAINS)
        assert hb.stats.outer_iterations >= 4

    def test_ordered_ops_agree(self):
        trace = ladder_trace(4, 3, rogues=2)
        bit = HappensBefore(trace)
        chain = HappensBefore(trace, backend=BACKEND_CHAINS)
        for i in range(0, len(trace), 3):
            for j in range(0, len(trace), 5):
                assert bit.ordered(i, j) == chain.ordered(i, j)
                assert bit.unordered(i, j) == chain.unordered(i, j)


class TestDeltaGainPropagation:
    """Regression for the unsound incremental dirty frontier (reported in
    review): ``ChainIndex.saturate_delta`` once dirtied only the closure
    predecessors of the round's edge *sources*, but a row can gain facts
    through an intermediate changed row without reaching any source —
    TRANS-MT's different-thread side condition blocks ``t0 ≺ B ≺ end(t1)``
    while ``t0 ≺ B ≺ tc`` is newly derivable.  The topology lives in
    :func:`repro.apps.ladder.lock_handoff_trace`."""

    def test_topology_exercises_the_gap(self):
        # Meaningful only if a FIFO round actually fires and the forked
        # thread's detour is the sole path from t0 into tc.
        hb = HappensBefore(lock_handoff_trace())
        assert hb.stats.fifo_edges >= 1
        assert hb.stats.outer_iterations >= 2

    @pytest.mark.parametrize("saturation", [SAT_FULL, SAT_INCREMENTAL])
    def test_hb_rows_identical_across_backends(self, saturation):
        trace = lock_handoff_trace()
        reference = HappensBefore(trace, saturation=SAT_FULL)
        hb = HappensBefore(
            trace, saturation=saturation, backend=BACKEND_CHAINS
        )
        for i in range(len(reference.graph)):
            assert reference.graph.hb_row(i) == hb.graph.hb_row(i), (
                "row %d differs under %s" % (i, saturation)
            )

    def test_no_false_race_in_any_mode(self):
        # t0's write is ordered into tc's write through the forked thread,
        # so the correct report is empty — the buggy frontier produced a
        # write/write race on X under chains+incremental only.
        trace = lock_handoff_trace()
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
            for saturation in (SAT_FULL, SAT_INCREMENTAL):
                report = detect_races(
                    trace, saturation=saturation, backend=backend
                )
                assert not report.races, (backend, saturation)

    def test_all_presets_and_coalescing_modes_agree(self):
        trace = lock_handoff_trace()
        for config in ALL_CONFIGS.values():
            for coalesce in (True, False):
                assert_same_relation(trace, config, coalesce)
                assert_same_relation(
                    trace, config, coalesce, saturation=SAT_FULL
                )


class TestDetectionEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_all_strategy_combos(self, seed):
        trace = run_random_app(seed).build_trace()
        reference = detect_races(
            trace, saturation=SAT_FULL, enumeration=ENUM_PAIRWISE
        )
        for saturation in (SAT_FULL, SAT_INCREMENTAL):
            for enumeration in (ENUM_PAIRWISE, ENUM_BATCHED):
                report = detect_races(
                    trace,
                    saturation=saturation,
                    enumeration=enumeration,
                    backend=BACKEND_CHAINS,
                )
                assert report_key(report) == report_key(reference)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_all_presets_chains_enumeration(self, seed):
        trace = run_random_app(seed).build_trace()
        for config in ALL_CONFIGS.values():
            reference = detect_races(trace, config=config)
            report = detect_races(trace, config=config, backend=BACKEND_CHAINS)
            assert report_key(report) == report_key(reference)

    def test_ladder_reports_identical_and_nonempty(self):
        trace = ladder_trace(6, 4, rogues=2)
        reference = detect_races(trace)
        assert reference.races  # rogue tasks race against the ladder
        chain = detect_races(trace, backend=BACKEND_CHAINS)
        assert report_key(chain) == report_key(reference)

    def test_ladder_body_does_not_change_races(self):
        # The benchmark's ``body`` knob must inflate node counts without
        # perturbing the race population it measures enumeration on (op
        # indices shift, so compare the deduplicated population, not ops).
        plain = detect_races(ladder_trace(4, 3))
        bodied = detect_races(ladder_trace(4, 3, body=5), backend=BACKEND_CHAINS)
        assert plain.racy_pair_count == bodied.racy_pair_count
        population = lambda report: sorted(
            (race.location, race.category.value) for race in report.races
        )
        assert population(plain) == population(bodied)


class TestObservability:
    def test_closure_stats_surfaced_in_report(self):
        report = detect_races(ladder_trace(3, 2), backend=BACKEND_CHAINS)
        assert report.closure is not None
        assert report.closure["backend"] == BACKEND_CHAINS
        assert report.closure["chain_count"] > 0
        assert report.closure["memory_bytes"] > 0
        data = report.to_dict()
        assert data["closure"]["backend"] == BACKEND_CHAINS
        roundtrip = RaceReport.from_dict(data)
        assert roundtrip.closure == report.closure

    def test_report_from_dict_tolerates_missing_closure(self):
        data = detect_races(ladder_trace(3, 2)).to_dict()
        del data["closure"]  # reports cached before the field existed
        assert RaceReport.from_dict(data).closure is None

    def test_memory_bytes_positive_both_backends(self):
        trace = ladder_trace(4, 3)
        bit = HappensBefore(trace)
        chain = HappensBefore(trace, backend=BACKEND_CHAINS)
        assert bit.graph.memory_bytes() > 0
        assert chain.graph.memory_bytes() > 0
        assert bit.stats.closure_memory_bytes >= bit.graph.memory_bytes()
        assert chain.stats.backend == BACKEND_CHAINS
        assert bit.stats.backend == BACKEND_BITMASK
        assert bit.stats.chain_count == 0

    def test_chain_count_matches_decomposition(self):
        hb = HappensBefore(ladder_trace(3, 2), backend=BACKEND_CHAINS)
        index = hb.graph.reach
        assert isinstance(index, ChainIndex)
        assert index.chain_count == len(index.chains)
        members = sorted(nid for chain in index.chains for nid in chain)
        assert members == list(range(len(hb.graph)))  # a true partition


class TestDetectorConfig:
    def test_backend_in_digest(self):
        base = DetectorConfig()
        chains = DetectorConfig(backend=BACKEND_CHAINS)
        assert base.digest() != chains.digest()
        assert chains.canonical_dict()["backend"] == BACKEND_CHAINS

    def test_build_detector_propagates_backend(self):
        detector = DetectorConfig(backend=BACKEND_CHAINS).build_detector(
            ladder_trace(2, 1)
        )
        assert detector.backend == BACKEND_CHAINS
        assert detector.detect().closure["backend"] == BACKEND_CHAINS


class TestValidation:
    def test_bad_backend_rejected(self):
        trace = ladder_trace(2, 1)
        with pytest.raises(ValueError):
            HappensBefore(trace, backend="magic")
        with pytest.raises(ValueError):
            RaceDetector(trace, backend="magic")

    def test_default_backend_is_bitmask(self):
        detector = RaceDetector(ladder_trace(2, 1))
        assert detector.backend == BACKEND_BITMASK


class TestIterBits:
    @given(st.integers(min_value=0, max_value=1 << 200))
    @settings(max_examples=50, deadline=None)
    def test_matches_bits(self, mask):
        assert list(iter_bits(mask)) == bits(mask)

    def test_is_lazy(self):
        gen = iter_bits((1 << 5) | (1 << 63))
        assert next(gen) == 5
        assert next(gen) == 63
        with pytest.raises(StopIteration):
            next(gen)


def closure_core(report):
    """The deterministic slice of the closure block: everything except the
    machine-dependent measurements and the backend/knob-specific stats."""
    core = dict(report.closure)
    for volatile in (
        "memory_bytes",
        "peak_rss_bytes",
        "backend",
        "chain_count",
        "chains_merged",
    ):
        core.pop(volatile, None)
    return core


#: Traces the scale-knob differentials run over.  ``wide_trace`` is the
#: chain-merging stress shape (many short same-thread chains), the ladder
#: drives many outer rounds, and ``lock_handoff_trace`` is the known
#: adversarial topology for incremental frontiers.
SCALE_TRACES = {
    "ladder": lambda: ladder_trace(4, 3, rogues=2, body=1),
    "wide": lambda: wide_trace(6, tasks_per_thread=3, seed=7),
    "handoff": lock_handoff_trace,
}


class TestScaleKnobDifferentials:
    """The three PR-7 scale levers — word-batched kernels, chain merging,
    and process-sharded saturation — are *performance knobs*: every
    combination must reproduce the reference report bit for bit."""

    @pytest.mark.parametrize("shape", sorted(SCALE_TRACES))
    def test_full_knob_product_matches_reference(self, shape):
        trace = SCALE_TRACES[shape]()
        reference = detect_races(
            trace, kernel=KERNEL_PYTHON, merge_chains=False
        )
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
            for kernel in (KERNEL_PYTHON, KERNEL_WORDS, KERNEL_AUTO):
                for merge in (False, True):
                    report = detect_races(
                        trace,
                        backend=backend,
                        kernel=kernel,
                        merge_chains=merge,
                    )
                    key = (backend, kernel, merge)
                    assert report_key(report) == report_key(reference), key
                    assert closure_core(report) == closure_core(reference), key

    @pytest.mark.parametrize("shape", sorted(SCALE_TRACES))
    @pytest.mark.parametrize("backend", [BACKEND_BITMASK, BACKEND_CHAINS])
    def test_sharded_saturation_matches_serial(self, shape, backend):
        # workers=2 exercises the fork/merge machinery end to end; the
        # least fixpoint is unique, so any worker count is byte-identical.
        trace = SCALE_TRACES[shape]()
        for saturation in (SAT_FULL, SAT_INCREMENTAL):
            serial = detect_races(
                trace, backend=backend, saturation=saturation
            )
            sharded = detect_races(
                trace,
                backend=backend,
                saturation=saturation,
                closure_workers=2,
            )
            assert report_key(sharded) == report_key(serial)
            assert closure_core(sharded) == closure_core(serial)

    def test_sharded_rows_identical(self):
        trace = ladder_trace(4, 2, body=2)
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
            serial = HappensBefore(trace, backend=backend)
            sharded = HappensBefore(trace, backend=backend, workers=2)
            for i in range(len(serial.graph)):
                assert serial.graph.hb_row(i) == sharded.graph.hb_row(i), i

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps_kernels_and_merging(self, seed):
        trace = run_random_app(seed).build_trace()
        reference = detect_races(
            trace, kernel=KERNEL_PYTHON, merge_chains=False
        )
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
            report = detect_races(
                trace, backend=backend, kernel=KERNEL_WORDS, merge_chains=True
            )
            assert report_key(report) == report_key(reference)


class TestChainMerging:
    """Directed tests for the pre-saturation merge pass: it must coalesce
    exactly the statically-bridged same-thread chain pairs and never the
    merely-FIFO-ordered (interleavable) ones."""

    THREADS = 5

    def _indexes(self):
        trace = wide_trace(self.THREADS, tasks_per_thread=3, seed=3)
        off = HappensBefore(trace, backend=BACKEND_CHAINS, merge_chains=False)
        on = HappensBefore(trace, backend=BACKEND_CHAINS, merge_chains=True)
        return off, on

    def test_merges_exactly_the_preloop_first_task_pairs(self):
        off, on = self._indexes()
        # Per worker thread: the pre-loop chain merges with the first
        # task (NO-Q-PO contributes the static bridge edge); nothing else.
        assert on.stats.chains_merged == self.THREADS
        assert (
            on.stats.chain_count
            == off.stats.chain_count - self.THREADS
        )
        assert on.graph.reach.chain_count == on.stats.chain_count

    def test_never_merges_interleavable_chains(self):
        off, on = self._indexes()
        original = off.graph.reach.chains
        merged = on.graph.reach.chains
        # Every merged chain is a concatenation of whole original chains
        # in ascending node order — merged ranges never interleave.
        starts = {chain[0]: list(chain) for chain in original}
        for chain in merged:
            assert list(chain) == sorted(chain)
            pos = 0
            while pos < len(chain):
                part = starts[chain[pos]]
                assert list(chain[pos : pos + len(part)]) == part
                pos += len(part)
        # The driver-posted tasks of one looper are ordered only through
        # FIFO (derived after merging runs), so they must stay separate:
        # no merged chain may span two of them.
        tids = on.graph.reach.chain_threads
        by_thread = {}
        for c, chain in enumerate(merged):
            by_thread.setdefault(tids[c], []).append(chain)
        workers = [t for t in by_thread if t.startswith("w")]
        assert len(workers) == self.THREADS
        for t in workers:
            # pre-loop+first-task, plus the two later tasks.
            assert len(by_thread[t]) == 3

    def test_merged_partition_is_total(self):
        _, on = self._indexes()
        index = on.graph.reach
        members = sorted(nid for chain in index.chains for nid in chain)
        assert members == list(range(len(on.graph)))
        assert index.chain_count == len(index.chains)

    def test_merging_keeps_wide_trace_races(self):
        trace = wide_trace(6, tasks_per_thread=3, seed=7)
        reference = detect_races(trace, merge_chains=False)
        assert reference.races  # unordered cross-thread shared writers
        merged = detect_races(
            trace, backend=BACKEND_CHAINS, merge_chains=True
        )
        assert report_key(merged) == report_key(reference)

    def test_merge_count_surfaces_in_report(self):
        report = detect_races(
            wide_trace(4, tasks_per_thread=2), backend=BACKEND_CHAINS
        )
        assert report.closure["chains_merged"] == 4
        assert report.closure["peak_rss_bytes"] >= 0

    def test_ladder_merges_nothing_bitmask_reports_zero(self):
        # Bitmask has no chains, so the stat must stay zero there.
        report = detect_races(ladder_trace(3, 2))
        assert report.closure["chains_merged"] == 0


class TestNumpyOptional:
    """The kernels must degrade gracefully when numpy is absent: ``auto``
    resolves to the reference kernel, and an explicit ``words`` request
    runs the ``array('Q')`` fallback — with identical results."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(reachability, "_np", None)
        monkeypatch.setattr(reachability, "_NP_BITS", False)

    def test_auto_resolves_to_python(self, no_numpy):
        assert not reachability.have_numpy()
        assert reachability.resolve_kernel(KERNEL_AUTO) == KERNEL_PYTHON
        hb = HappensBefore(ladder_trace(2, 1))
        assert hb.kernel == KERNEL_PYTHON

    def test_words_fallback_matches_reference(self, no_numpy):
        trace = SCALE_TRACES["wide"]()
        reference = detect_races(
            trace, kernel=KERNEL_PYTHON, merge_chains=False
        )
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
            report = detect_races(
                trace, backend=backend, kernel=KERNEL_WORDS, merge_chains=True
            )
            assert report_key(report) == report_key(reference), backend

    def test_words_fallback_sharded(self, no_numpy):
        trace = lock_handoff_trace()
        for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
            report = detect_races(
                trace, backend=backend, kernel=KERNEL_WORDS, closure_workers=2
            )
            assert not report.races, backend

    def test_chain_rows_fall_back_to_arrays(self, no_numpy):
        hb = HappensBefore(ladder_trace(3, 2), backend=BACKEND_CHAINS,
                           kernel=KERNEL_WORDS)
        index = hb.graph.reach
        assert index.memory_bytes() > 0
        assert getattr(index, "_matrix", None) is None


class TestScaleKnobConfig:
    def test_knobs_do_not_change_digest(self):
        # The knobs never change reports, so they are deliberately
        # excluded from the canonical config — cached corpus results and
        # history baselines stay valid across kernel/worker settings.
        base = DetectorConfig()
        tweaked = DetectorConfig(
            kernel=KERNEL_PYTHON, merge_chains=False, closure_workers=4
        )
        assert base.digest() == tweaked.digest()
        for key in ("kernel", "merge_chains", "closure_workers"):
            assert key not in base.canonical_dict()

    def test_build_detector_propagates_knobs(self):
        config = DetectorConfig(
            backend=BACKEND_CHAINS,
            kernel=KERNEL_PYTHON,
            merge_chains=False,
            closure_workers=2,
        )
        detector = config.build_detector(ladder_trace(2, 1))
        assert detector.kernel == KERNEL_PYTHON
        assert detector.merge_chains is False
        assert detector.closure_workers == 2
        assert detector.detect().closure["chains_merged"] == 0

    def test_bad_knobs_rejected(self):
        trace = ladder_trace(2, 1)
        with pytest.raises(ValueError):
            HappensBefore(trace, workers=0)
        with pytest.raises(ValueError):
            RaceDetector(trace, closure_workers=0)
        with pytest.raises(ValueError):
            reachability.resolve_kernel("magic")

    def test_auto_kernel_resolves_eagerly(self):
        hb = HappensBefore(ladder_trace(2, 1))
        assert hb.kernel in (KERNEL_PYTHON, KERNEL_WORDS)
        assert hb.kernel == reachability.resolve_kernel(KERNEL_AUTO)
