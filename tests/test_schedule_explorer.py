"""Tests for automated race validation via schedule perturbation —
the mechanized version of the paper's §6 DDMS debugger sessions."""

import pytest

from repro.apps.browser_app import BrowserApp
from repro.apps.dictionary_app import DictionaryApp
from repro.apps.messenger_app import MessengerApp
from repro.core import detect_races
from repro.explorer import ScheduleExplorer


SEEDS = range(14)


class TestTruePositivesValidate:
    def test_dictionary_service_race_flips_order(self):
        explorer = ScheduleExplorer(
            DictionaryApp(), events=["click:lookupBtn"], seeds=SEEDS
        )
        result = explorer.validate_field("DictionaryService.loaded")
        assert result.validated
        assert len(result.observations) >= 2
        assert "VALIDATED" in result.describe()

    def test_browser_genuine_favicon_race_validates(self):
        explorer = ScheduleExplorer(
            BrowserApp(), events=["click:loadBtn"], seeds=SEEDS
        )
        assert explorer.validate_field("BrowserActivity.favicon").validated


class TestFalsePositivesStayUnconfirmed:
    def test_browser_untracked_relay_never_flips(self):
        """The url/progress 'races' are causally fixed by the invisible
        native relay: every schedule produces the same access order."""
        explorer = ScheduleExplorer(
            BrowserApp(), events=["click:loadBtn"], seeds=SEEDS
        )
        for field in ("BrowserActivity.url", "BrowserActivity.progress"):
            result = explorer.validate_field(field)
            assert not result.validated, field
            assert len(result.orders_seen) <= 1


class TestValidateReport:
    def test_validate_full_report(self):
        app = MessengerApp()
        system = app.build(seed=1)
        system.run_to_quiescence()
        from repro.explorer import find_event

        event = find_event(system.enabled_events(), "click:deleteBtn")
        system.fire(event)
        system.run_to_quiescence()
        report = detect_races(system.finish())
        assert report.races
        explorer = ScheduleExplorer(
            app, events=["click:deleteBtn"], seeds=SEEDS
        )
        results = explorer.validate_report(report.races)
        assert set(results) == {r.field_name for r in report.races}
        # The Cursor race is a §6-confirmed true positive: it validates.
        rows = results.get("ConversationActivity.rows")
        assert rows is not None and rows.validated

    def test_field_never_accessed_yields_no_observations(self):
        explorer = ScheduleExplorer(DictionaryApp(), seeds=range(3))
        result = explorer.validate_field("Ghost.field")
        assert not result.validated
        assert result.observations == []


class TestSyntheticGroundTruthSpotCheck:
    """The synthetic apps' ground-truth registry agrees with dynamic
    validation on representative gadgets (full-matrix validation would be
    slow; the registry is by-construction)."""

    def test_mt_true_gadget_validates(self):
        from repro.apps.specs import SPEC_BY_NAME
        from repro.apps.synthetic import SyntheticApp

        app = SyntheticApp(SPEC_BY_NAME["Aard Dictionary"], scale=0.15)

        class Wrapper:
            name = "aard-wrapper"

            def build(self, seed=0):
                return app.build(seed)

        explorer = ScheduleExplorer(
            Wrapper(), events=app.scripted_events(), seeds=range(6)
        )
        # Seed sweeps alone cannot flip this pair (the probe task sits
        # behind a deep message queue), exactly why the paper resorted to
        # breakpoints; the adversarial stall strategy flips it.
        assert not explorer.validate_field("Racy.mt_t0").validated
        result = explorer.validate_field_adversarially("Racy.mt_t0")
        assert result.validated

    def test_adversarial_does_not_confirm_false_positive(self):
        explorer = ScheduleExplorer(
            BrowserApp(), events=["click:loadBtn"], seeds=range(6)
        )
        result = explorer.validate_field_adversarially("BrowserActivity.url")
        assert not result.validated
