"""Tests for the operational semantics (Figure 5) replay validator."""

import pytest

from repro.core.operations import (
    acquire,
    attachq,
    begin,
    enable,
    end,
    fork,
    join,
    looponq,
    post,
    read,
    release,
    threadexit,
    threadinit,
    write,
)
from repro.core.semantics import (
    ApplicationState,
    SemanticsError,
    is_valid_trace,
    step,
    validate_trace,
)
from repro.core.trace import ExecutionTrace


def trace_of(*ops):
    return ExecutionTrace(list(ops))


class TestInitExit:
    def test_framework_thread_admitted_lazily(self):
        assert is_valid_trace(trace_of(threadinit("t")))

    def test_ops_before_threadinit_rejected(self):
        with pytest.raises(SemanticsError):
            validate_trace(trace_of(read("t", "m"), threadinit("t")))

    def test_exit_while_task_running_rejected(self):
        ops = [
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            post("t", "p", "t"),
            begin("t", "p"),
            threadexit("t"),
        ]
        with pytest.raises(SemanticsError, match="still running"):
            validate_trace(trace_of(*ops))

    def test_ops_after_exit_rejected(self):
        with pytest.raises(SemanticsError):
            validate_trace(trace_of(threadinit("t"), threadexit("t"), read("t", "m")))


class TestForkJoin:
    def test_fork_then_init_then_join(self):
        assert is_valid_trace(
            trace_of(
                threadinit("t"),
                fork("t", "u"),
                threadinit("u"),
                threadexit("u"),
                join("t", "u"),
            )
        )

    def test_fork_of_existing_thread_rejected(self):
        with pytest.raises(SemanticsError, match="not fresh"):
            validate_trace(trace_of(threadinit("t"), threadinit("u"), fork("t", "u")))

    def test_join_before_exit_rejected(self):
        with pytest.raises(SemanticsError, match="has not finished"):
            validate_trace(
                trace_of(threadinit("t"), fork("t", "u"), threadinit("u"), join("t", "u"))
            )


class TestLocks:
    def test_acquire_release_cycle(self):
        assert is_valid_trace(
            trace_of(threadinit("t"), acquire("t", "l"), release("t", "l"))
        )

    def test_reentrant_acquire_allowed(self):
        assert is_valid_trace(
            trace_of(
                threadinit("t"),
                acquire("t", "l"),
                acquire("t", "l"),
                release("t", "l"),
                release("t", "l"),
            )
        )

    def test_acquire_of_held_lock_rejected(self):
        with pytest.raises(SemanticsError, match="held by"):
            validate_trace(
                trace_of(
                    threadinit("t"),
                    threadinit("u"),
                    acquire("t", "l"),
                    acquire("u", "l"),
                )
            )

    def test_release_of_unheld_lock_rejected(self):
        with pytest.raises(SemanticsError, match="not held"):
            validate_trace(trace_of(threadinit("t"), release("t", "l")))

    def test_release_after_other_thread_releases(self):
        assert is_valid_trace(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                acquire("t", "l"),
                release("t", "l"),
                acquire("u", "l"),
                release("u", "l"),
            )
        )


class TestQueues:
    def test_post_to_thread_without_queue_rejected(self):
        with pytest.raises(SemanticsError, match="no task queue"):
            validate_trace(
                trace_of(threadinit("t"), threadinit("u"), post("t", "p", "u"))
            )

    def test_post_allowed_before_loop(self):
        # Figure 5: the queue receives posts immediately after attachQ.
        assert is_valid_trace(
            trace_of(threadinit("t"), attachq("t"), post("t", "p", "t"))
        )

    def test_begin_before_loop_rejected(self):
        with pytest.raises(SemanticsError, match="has not begun looping"):
            validate_trace(
                trace_of(
                    threadinit("t"), attachq("t"), post("t", "p", "t"), begin("t", "p")
                )
            )

    def test_begin_of_unposted_task_rejected(self):
        with pytest.raises(SemanticsError):
            validate_trace(
                trace_of(threadinit("t"), attachq("t"), looponq("t"), begin("t", "p"))
            )

    def test_strict_fifo_enforced(self):
        ops = [
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            post("t", "p1", "t"),
            post("t", "p2", "t"),
            begin("t", "p2"),  # out of FIFO order
        ]
        assert is_valid_trace(trace_of(*ops), strict_fifo=False)
        with pytest.raises(SemanticsError, match="not at the front"):
            validate_trace(trace_of(*ops), strict_fifo=True)

    def test_begin_while_executing_rejected(self):
        # Run-to-completion: a second begin without end is invalid at the
        # trace-structure level already.
        from repro.core.trace import InvalidTraceError

        with pytest.raises(InvalidTraceError):
            trace_of(
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                post("t", "p1", "t"),
                post("t", "p2", "t"),
                begin("t", "p1"),
                begin("t", "p2"),
            )

    def test_end_of_non_running_task_rejected_by_trace(self):
        from repro.core.trace import InvalidTraceError

        with pytest.raises(InvalidTraceError):
            trace_of(
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                post("t", "p1", "t"),
                post("t", "p2", "t"),
                begin("t", "p1"),
                end("t", "p2"),
            )


class TestMemoryAndEnable:
    def test_read_write_enable_need_running_thread(self):
        state = ApplicationState()
        with pytest.raises(SemanticsError):
            step(state, read("ghost", "m", index=0))

    def test_full_figure_style_trace_validates(self):
        from repro.apps.paper_traces import figure3_trace, figure4_trace

        validate_trace(figure3_trace(), strict_fifo=True)
        validate_trace(figure4_trace(), strict_fifo=True)


class TestAtFront:
    def test_at_front_post_dequeues_first_in_relaxed_mode(self):
        ops = [
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            post("t", "p1", "t"),
            post("t", "p2", "t", at_front=True),
            begin("t", "p2"),
            end("t", "p2"),
            begin("t", "p1"),
            end("t", "p1"),
        ]
        assert is_valid_trace(trace_of(*ops), strict_fifo=False)


class TestRuntimeTracesAreValid:
    """The semantics is the contract between trace generation and analysis:
    every trace the simulated runtime produces must replay cleanly."""

    def test_music_player_traces_valid(self):
        from repro.apps.music_player import run_scenario

        for back in (False, True):
            _, trace = run_scenario(press_back=back, seed=13)
            validate_trace(trace)

    def test_demo_app_traces_valid(self):
        from repro.apps.registry import DEMO_APPS
        from repro.explorer import UIExplorer

        for app in DEMO_APPS.values():
            result = UIExplorer(app, depth=1, seed=4, max_runs=4).explore()
            for run in result.store.runs:
                validate_trace(run.trace)
