"""Tests for ``droidracer serve``: job queue semantics, per-trace
analysis budgets, and the HTTP service end-to-end through a real
socket (threaded :class:`ServiceClient` against an in-process
:class:`BackgroundServer`)."""

import gzip
import re
import threading
import time

import pytest

from repro.apps.paper_traces import figure4_trace
from repro.core.race_detector import DetectorConfig
from repro.corpus import (
    BatchAnalyzer,
    CorpusError,
    ResultCache,
    TraceStore,
    report_to_json,
)
from repro.corpus.pipeline import AnalysisTimeout, _analysis_budget
from repro.service import (
    BackgroundServer,
    JobQueue,
    QueueFullError,
    ServiceClient,
    ServiceError,
)
from repro.service.app import RaceService
from repro.service.http import HttpError, _gunzip_capped
from tests.test_store_concurrency import make_trace

CONFIG = DetectorConfig()
CONFIG_DIGEST = CONFIG.digest()


# -- job queue ---------------------------------------------------------------


def submit(queue, digest, **kwargs):
    kwargs.setdefault("trace_name", "t-%s" % digest)
    kwargs.setdefault("app", "app")
    return queue.submit(digest, CONFIG_DIGEST, **kwargs)


def test_queue_fifo_and_idempotent_submit():
    queue = JobQueue()
    job_a, created_a = submit(queue, "aaa")
    job_b, created_b = submit(queue, "bbb")
    assert created_a and created_b
    again, created = submit(queue, "aaa")
    assert not created and again.job_id == job_a.job_id

    assert queue.next_job().job_id == job_a.job_id
    assert queue.next_job().job_id == job_b.job_id
    assert queue.next_job() is None

    # Running jobs still dedupe.
    again, created = submit(queue, "bbb")
    assert not created and again.job_id == job_b.job_id


def test_queue_depth_bound_and_cached_bypass():
    queue = JobQueue(max_depth=2)
    submit(queue, "a")
    submit(queue, "b")
    with pytest.raises(QueueFullError):
        submit(queue, "c")
    # A cache-hit submission completes instantly and bypasses the bound.
    job, created = submit(queue, "d", cached=True)
    assert created and job.state == "done" and job.cached


def test_queue_retry_limit():
    queue = JobQueue(max_attempts=2)
    job, _ = submit(queue, "a")
    assert queue.next_job().job_id == job.job_id  # attempt 1
    assert queue.fail(job.job_id, "worker died", retry=True)  # re-queued
    assert queue.next_job().job_id == job.job_id  # attempt 2
    assert not queue.fail(job.job_id, "worker died again", retry=True)
    assert queue.get(job.job_id).state == "failed"


def test_queue_deterministic_failures_do_not_retry():
    queue = JobQueue(max_attempts=3)
    job, _ = submit(queue, "a")
    queue.next_job()
    assert not queue.fail(job.job_id, "TraceFormatError: bad line")
    assert queue.get(job.job_id).state == "failed"
    assert queue.next_job() is None


def test_queue_journal_replay(tmp_path):
    journal = str(tmp_path / "svc" / "jobs.jsonl")
    queue = JobQueue(journal)
    done_job, _ = submit(queue, "finished")
    queue.next_job()
    queue.complete(done_job.job_id, seconds=0.5, race_count=3)
    queued_job, _ = submit(queue, "still-queued")
    running_job, _ = submit(queue, "was-running")
    # Make "was-running" the claimed one.
    assert queue.next_job().job_id == queued_job.job_id
    queue.fail(queued_job.job_id, "worker died", retry=True)  # back in line
    assert queue.next_job().job_id == running_job.job_id
    queue.close()

    # Crash + restart: done stays done; queued and interrupted-running
    # jobs come back queued, in submission order, attempts preserved.
    revived = JobQueue(journal)
    assert revived.recovered == 2
    assert revived.get(done_job.job_id).state == "done"
    assert revived.get(done_job.job_id).race_count == 3
    first, second = revived.next_job(), revived.next_job()
    assert first.job_id == queued_job.job_id
    assert second.job_id == running_job.job_id
    assert second.attempts == 2  # replayed attempt + this claim
    # Completion events replayed with stable seq numbers.
    events = revived.events_since(0)
    assert [e["job"]["job_id"] for e in events] == [done_job.job_id]


def test_queue_events_are_monotonic():
    queue = JobQueue()
    for digest in ("a", "b", "c"):
        job, _ = submit(queue, digest)
        queue.next_job()
        queue.complete(job.job_id)
    seqs = [e["seq"] for e in queue.events_since(0)]
    assert seqs == [1, 2, 3]
    assert [e["seq"] for e in queue.events_since(2)] == [3]
    assert queue.last_seq == 3


def test_queue_event_window_and_terminal_job_pruning():
    # A long-running service must not grow without bound: only the most
    # recent events stay replayable and old *terminal* jobs are pruned.
    queue = JobQueue(event_window=2, retain_jobs=3)
    done = []
    for digest in ("a", "b", "c", "d", "e"):
        job, _ = submit(queue, digest)
        queue.next_job()
        queue.complete(job.job_id)
        done.append(job.job_id)
    assert [e["seq"] for e in queue.events_since(0)] == [4, 5]
    assert queue.first_retained_seq == 4
    assert queue.last_seq == 5
    assert [j.job_id for j in queue.jobs()] == done[-3:]
    assert queue.get(done[0]) is None
    # A pruned key lost its dedup memory: resubmission makes a new job.
    fresh, created = submit(queue, "a")
    assert created and fresh.job_id != done[0]


def test_queue_never_prunes_active_jobs():
    queue = JobQueue(retain_jobs=2)
    for digest in ("a", "b", "c", "d"):
        submit(queue, digest)
    claimed = queue.next_job()  # 'a'
    queue.complete(claimed.job_id)
    # Over the retention limit, but only terminal records may go: the
    # finished 'a' is pruned, the three still-queued jobs all survive.
    remaining = queue.jobs()
    assert len(remaining) == 3
    assert all(j.state == "queued" for j in remaining)
    assert queue.get(claimed.job_id) is None


# -- request-body inflation (gzip-bomb hardening) ----------------------------


def test_gunzip_capped_roundtrip_and_members():
    data = b"hello race service " * 100
    assert _gunzip_capped(gzip.compress(data), len(data)) == data
    # Concatenated gzip members inflate like gzip.decompress did.
    two = gzip.compress(b"abc") + gzip.compress(b"def")
    assert _gunzip_capped(two, 64) == b"abcdef"


def test_gunzip_capped_rejects_bombs_and_garbage():
    # A ~4 KiB-of-zeros bomb against a 1 KiB budget dies at 413 without
    # the full payload ever being materialized.
    with pytest.raises(HttpError) as err:
        _gunzip_capped(gzip.compress(b"0" * 4096), 1024)
    assert err.value.status == 413
    with pytest.raises(HttpError) as err:
        _gunzip_capped(gzip.compress(b"0" * 4096)[:-4], 1 << 20)  # truncated
    assert err.value.status == 400
    with pytest.raises(HttpError) as err:
        _gunzip_capped(b"definitely not gzip", 1024)
    assert err.value.status == 400


# -- result-cache key validation (path-traversal hardening) ------------------


def test_result_cache_rejects_traversal_keys(tmp_path):
    cache = ResultCache(str(tmp_path / "store"))
    victim = tmp_path / "store" / "victim.json"
    victim.parent.mkdir(parents=True, exist_ok=True)
    victim.write_text("{}", encoding="utf-8")
    for trace_key, config_key in (
        ("..", "victim"),
        ("../..", "victim"),
        ("b" * 64, "../victim"),
        ("A" * 64, "b" * 64),  # digests are lowercase hex
        ("abc", "b" * 64),  # too short to be a digest
    ):
        with pytest.raises(CorpusError):
            cache.path_for(trace_key, config_key)
        with pytest.raises(CorpusError):
            cache.get(trace_key, config_key)
    # Nothing outside the cache root was read or unlinked.
    assert victim.exists()


# -- worker-pool rebuild (broken-pool cascade hardening) ---------------------


def test_pool_rebuild_is_generation_guarded(tmp_path):
    service = RaceService(store_root=str(tmp_path / "corpus"), jobs=1)
    try:
        _first, gen1 = service._ensure_executor()
        service._rebuild_executor(gen1)
        assert service.pool_restarts == 1 and service._executor is None
        replacement, gen2 = service._ensure_executor()
        assert gen2 == gen1 + 1
        # A straggler job failing against the *old* pool must not tear
        # down (and cancel jobs on) the healthy replacement.
        service._rebuild_executor(gen1)
        assert service.pool_restarts == 1
        assert service._executor is replacement
        service._rebuild_executor(gen2)
        assert service.pool_restarts == 2 and service._executor is None
    finally:
        if service._executor is not None:
            service._executor.shutdown(wait=False, cancel_futures=True)
        service.queue.close()


# -- analysis budget (satellite: BatchAnalyzer --timeout) --------------------


def test_analysis_budget_expires():
    with pytest.raises(AnalysisTimeout):
        with _analysis_budget(0.01):
            time.sleep(2)


def test_analysis_budget_disabled_and_off_main_thread():
    with _analysis_budget(None):
        pass
    outcome = []

    def body():
        # Signals cannot be installed off the main thread: the budget
        # must degrade to a documented no-op, not crash.
        with _analysis_budget(0.001):
            time.sleep(0.05)
        outcome.append("ok")

    thread = threading.Thread(target=body)
    thread.start()
    thread.join()
    assert outcome == ["ok"]


def test_batch_analyzer_timeout_surfaces_in_summary(tmp_path):
    store = TraceStore(str(tmp_path))
    store.ingest(figure4_trace())
    batch = BatchAnalyzer(store, jobs=1, timeout=1e-6).analyze()
    (result,) = batch.results
    assert result.timed_out
    assert result.error.startswith("AnalysisTimeout")
    assert len(batch.timeouts()) == 1
    assert "1 timeouts" in batch.summary()

    # Without a budget the same corpus analyzes fine, and the summary
    # keeps its historical no-timeout format.
    batch = BatchAnalyzer(store, jobs=1).analyze()
    assert batch.timeouts() == []
    assert "timeouts" not in batch.summary()


# -- HTTP service end-to-end -------------------------------------------------


def strip_volatile(text: str) -> str:
    """Blank the per-run fields byte-identity deliberately excludes
    (exactly what ``repro.obs.report_digest`` drops)."""
    text = re.sub(r'"analysis_seconds": [-0-9.e+]+', '"analysis_seconds": 0', text)
    text = re.sub(r'"memory_bytes": \d+', '"memory_bytes": 0', text)
    text = re.sub(r'"peak_rss_bytes": \d+', '"peak_rss_bytes": 0', text)
    return re.sub(r'"trace_name": "[^"]*"', '"trace_name": ""', text)


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(
        store_root=str(tmp_path / "corpus"), jobs=0, queue_depth=16
    ) as srv:
        yield srv


@pytest.fixture
def client(server):
    c = ServiceClient(server.base_url)
    yield c
    c.close()


def test_e2e_upload_analyze_report(client):
    trace = figure4_trace()
    payload = client.upload(trace.to_jsonl(), name=trace.name, app="figure4")
    assert payload["job"]["state"] in ("queued", "running", "done")
    job = client.wait(payload["job"]["job_id"])
    assert job["state"] == "done"
    assert job["race_count"] == 2

    served = client.report_text(payload["trace_digest"])
    offline = report_to_json(CONFIG.build_detector(trace).detect()) + "\n"
    assert strip_volatile(served) == strip_volatile(offline)

    # Same content re-uploaded: ingest no-op + job dedup/cache.
    again = client.upload(trace.to_jsonl(), name=trace.name)
    assert again["trace_digest"] == payload["trace_digest"]
    assert again["job"]["state"] == "done"


def test_e2e_gzip_upload(client):
    trace = figure4_trace()
    payload = client.upload(trace.to_jsonl(), name=trace.name, compress=True)
    job = client.wait(payload["job"]["job_id"])
    assert job["state"] == "done" and job["race_count"] == 2


def test_e2e_batch_upload(client):
    items = [
        {"jsonl": make_trace(1, i).to_jsonl(), "name": "batch-%d" % i}
        for i in range(3)
    ]
    items.append({"jsonl": "not json lines"})  # one bad apple
    result = client.upload_batch(items)
    assert result["accepted"] == 3
    statuses = [item["status"] for item in result["items"]]
    assert statuses == [202, 202, 202, 400]
    for item in result["items"][:3]:
        assert client.wait(item["job"]["job_id"])["state"] == "done"
    listing = client.jobs(state="done")
    assert len(listing["jobs"]) == 3


def test_e2e_upload_without_analyze(client):
    payload = client.upload(
        make_trace(2, 0).to_jsonl(), name="stored-only", analyze=False
    )
    assert payload["job"] is None
    corpus = client.corpus()
    assert [e["name"] for e in corpus["entries"]] == ["stored-only"]
    assert client.jobs()["jobs"] == []


def test_e2e_namespaces(client):
    trace = make_trace(3, 0)
    client.upload(trace.to_jsonl(), name="t", namespace="tenant-a", analyze=False)
    assert client.corpus(namespace="tenant-a")["entries"]
    assert client.corpus()["entries"] == []
    with pytest.raises(ServiceError) as err:
        client.upload(trace.to_jsonl(), namespace="../escape", analyze=False)
    assert err.value.status == 400


def test_e2e_error_responses(client):
    with pytest.raises(ServiceError) as err:
        client.upload("definitely not a trace", name="bad")
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.job("no-such-job")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.report_text("0" * 64)
    assert err.value.status == 404
    status, _ = client.request("GET", "/nonsense")
    assert status == 404
    status, _ = client.request("DELETE", "/v1/jobs")
    assert status == 405


def test_e2e_report_path_traversal_rejected(server, client, tmp_path):
    # Before digest validation, GET /v1/reports/..?config=victim joined
    # the URL components straight into a filesystem path one level above
    # the results dir — and the corrupt-entry handler would *unlink* the
    # resolved file.  Plant a victim and prove it survives a 400.
    victim = tmp_path / "corpus" / "victim.json"
    victim.parent.mkdir(parents=True, exist_ok=True)
    victim.write_text("{}", encoding="utf-8")
    for digest in ("..", "..%2F..", "zzzz", "%2e%2e"):
        status, _ = client.request(
            "GET", "/v1/reports/%s" % digest, params={"config": "victim"}
        )
        assert status == 400
    # A well-formed trace digest with a traversing config is rejected too.
    status, _ = client.request(
        "GET", "/v1/reports/%s" % ("0" * 64), params={"config": "../victim"}
    )
    assert status == 400
    assert victim.exists()


def test_e2e_gzip_bomb_rejected(tmp_path):
    with BackgroundServer(
        store_root=str(tmp_path / "corpus"), jobs=0, max_body_bytes=4096
    ) as srv:
        client = ServiceClient(srv.base_url)
        bomb = gzip.compress(b"0" * (1 << 20))  # ~1 KiB wire, 1 MiB inflated
        assert len(bomb) <= 4096  # passes the compressed-size check
        status, _ = client.request(
            "POST",
            "/v1/traces",
            body=bomb,
            headers={"Content-Encoding": "gzip"},
        )
        assert status == 413
        client.close()


def test_e2e_status_and_compact(client):
    client.upload(make_trace(4, 0).to_jsonl(), name="t", analyze=False)
    status = client.status()
    assert status["ok"]
    assert status["queue"]["max_depth"] == 16
    assert status["pool"]["mode"] == "inline"
    assert status["corpus"]["default"]["entries"] == 1
    assert status["counters"]["service.traces_ingested"] == 1
    compacted = client.compact()
    assert compacted["compacted"]["default"] == 1


def test_e2e_stream_replay_and_live(server, client):
    trace = figure4_trace()
    payload = client.upload(trace.to_jsonl(), name=trace.name)
    client.wait(payload["job"]["job_id"])
    # Replay: the completion event is served to a late subscriber.
    events = list(client.stream(after=0, max_events=1, timeout=10))
    assert len(events) == 1
    assert events[0]["seq"] == 1
    assert events[0]["job"]["state"] == "done"
    assert events[0]["job"]["trace_digest"] == payload["trace_digest"]

    # Live: subscribe first, then complete a second job.
    got = []
    collector = threading.Thread(
        target=lambda: got.extend(
            ServiceClient(server.base_url).stream(
                after=1, max_events=1, timeout=30
            )
        )
    )
    collector.start()
    time.sleep(0.2)  # let the subscription register
    second = client.upload(make_trace(5, 0).to_jsonl(), name="live")
    client.wait(second["job"]["job_id"])
    collector.join(timeout=30)
    assert not collector.is_alive()
    assert len(got) == 1 and got[0]["seq"] == 2


def test_e2e_backpressure_429(tmp_path):
    # drain=False parks the scheduler: jobs stay queued, so the depth
    # bound is deterministic.
    with BackgroundServer(
        store_root=str(tmp_path / "corpus"),
        jobs=0,
        queue_depth=1,
        drain=False,
    ) as srv:
        client = ServiceClient(srv.base_url)
        first = client.upload(make_trace(6, 0).to_jsonl(), name="first")
        assert first["job"]["state"] == "queued"
        with pytest.raises(ServiceError) as err:
            client.upload(make_trace(6, 1).to_jsonl(), name="second")
        assert err.value.status == 429
        # The trace was still ingested — only the job was refused.
        assert len(client.corpus()["entries"]) == 2
        client.close()


def test_e2e_restart_resumes_journal(tmp_path):
    root = str(tmp_path / "corpus")
    trace = make_trace(7, 0)

    # Boot 1: accept but never dispatch, then die with the job queued.
    with BackgroundServer(store_root=root, jobs=0, drain=False) as srv:
        client = ServiceClient(srv.base_url)
        payload = client.upload(trace.to_jsonl(), name="resume-me")
        job_id = payload["job"]["job_id"]
        assert client.job(job_id)["state"] == "queued"
        client.close()

    # Boot 2: the journal resurrects the same job and it completes.
    with BackgroundServer(store_root=root, jobs=0) as srv:
        client = ServiceClient(srv.base_url)
        job = client.wait(job_id, timeout=60)
        assert job["state"] == "done"
        report = client.report(payload["trace_digest"])
        assert report["racy_pair_count"] >= 0
        client.close()

    # Boot 3: the completed key is terminal — nothing is re-queued, and
    # resubmitting the same trace short-circuits through the cache.
    with BackgroundServer(store_root=root, jobs=0) as srv:
        client = ServiceClient(srv.base_url)
        assert client.job(job_id)["state"] == "done"
        assert client.status()["queue"]["queued"] == 0
        again = client.upload(trace.to_jsonl(), name="resume-me")
        assert again["job"]["job_id"] == job_id
        assert again["job"]["state"] == "done"
        client.close()


def test_e2e_service_timeout_fails_job(tmp_path):
    # jobs=1: a real worker process, where SIGALRM budgets apply.
    with BackgroundServer(
        store_root=str(tmp_path / "corpus"), jobs=1, timeout=1e-6
    ) as srv:
        client = ServiceClient(srv.base_url)
        payload = client.upload(figure4_trace().to_jsonl(), name="slow")
        job = client.wait(payload["job"]["job_id"], timeout=120)
        assert job["state"] == "failed"
        assert job["error"].startswith("AnalysisTimeout")
        assert client.status()["counters"]["service.job_timeouts"] == 1
        client.close()
