"""Multi-process hammer tests for the sharded trace store.

The service's whole premise is many writers ingesting into one corpus
while readers list/load and compaction folds manifests mid-flight.
These tests drive that contention pattern with real processes: no
entry may be lost, no manifest may be observed torn, and every stored
trace must load back digest-identical.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.operations import (
    attachq,
    begin,
    end,
    looponq,
    post,
    read,
    threadinit,
    write,
)
from repro.core.trace import ExecutionTrace, TraceBuilder
from repro.corpus import TraceStore
from repro.corpus.store import ENTRY_SUFFIX, MANIFEST_NAME


def make_trace(writer_id: int, i: int) -> ExecutionTrace:
    """A small valid trace whose content (hence digest) is unique per
    ``(writer_id, i)``."""
    b = TraceBuilder("hammer-w%d-t%d" % (writer_id, i))
    location = "Obj@%d.f%d" % (writer_id, i)
    b.extend(
        [
            threadinit("t0"),
            attachq("t0"),
            looponq("t0"),
            post("t0", "p1", "t0"),
            post("t0", "p2", "t0"),
            begin("t0", "p1"),
            write("t0", location),
            end("t0", "p1"),
            begin("t0", "p2"),
            read("t0", location),
            end("t0", "p2"),
        ]
    )
    return b.build()


def _writer_proc(root: str, writer_id: int, count: int) -> None:
    # Tiny threshold: every writer triggers compaction repeatedly, so
    # ingest and compaction contend for real.
    store = TraceStore(root, compact_threshold=3)
    for i in range(count):
        store.ingest(make_trace(writer_id, i))


def _compactor_proc(root: str, rounds: int) -> None:
    store = TraceStore(root, compact_threshold=0)
    for _ in range(rounds):
        store.compact()


def _reader_proc(root: str, rounds: int) -> None:
    # Readers re-scan manifests mid-write/mid-compaction; any torn
    # manifest or half-written trace file would raise here.
    for _ in range(rounds):
        store = TraceStore(root)
        for entry in store.entries():
            loaded = store.load(entry.digest)
            assert loaded.canonical_digest() == entry.digest


@pytest.mark.parametrize("writers,per_writer", [(4, 10)])
def test_concurrent_ingest_hammer(tmp_path, writers, per_writer):
    root = str(tmp_path / "corpus")
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_writer_proc, args=(root, w, per_writer))
        for w in range(writers)
    ]
    procs.append(ctx.Process(target=_compactor_proc, args=(root, 12)))
    procs.append(ctx.Process(target=_reader_proc, args=(root, 12)))
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert not p.is_alive(), "hammer process wedged"
        assert p.exitcode == 0, "hammer process failed (exit %s)" % p.exitcode

    # Every entry every writer ingested is present — nothing lost to a
    # concurrent compaction or a clobbered manifest write.
    store = TraceStore(root)
    expected = {
        make_trace(w, i).canonical_digest()
        for w in range(writers)
        for i in range(per_writer)
    }
    assert {e.digest for e in store.entries()} == expected

    # Every stored payload loads back digest-identical.
    for digest in expected:
        assert store.load(digest).canonical_digest() == digest

    # No torn files anywhere: every manifest layer parses.
    traces_dir = tmp_path / "corpus" / "traces"
    for shard in traces_dir.iterdir():
        if not shard.is_dir():
            continue
        snapshot = shard / MANIFEST_NAME
        if snapshot.exists():
            json.loads(snapshot.read_text())
        for entry_file in shard.glob("*" + ENTRY_SUFFIX):
            json.loads(entry_file.read_text())

    # A final compaction folds everything into snapshots and keeps the
    # same view.
    store.compact()
    assert len(store) == len(expected)
    leftover = [
        f
        for shard in traces_dir.iterdir()
        if shard.is_dir()
        for f in shard.glob("*" + ENTRY_SUFFIX)
    ]
    assert leftover == []


def test_same_digest_concurrent_ingest(tmp_path):
    """All writers racing on the *same* trace converge on one entry."""
    root = str(tmp_path / "corpus")
    trace = make_trace(99, 0)
    digest = trace.canonical_digest()

    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_same_trace_writer, args=(root,)) for _ in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    store = TraceStore(root)
    assert [e.digest for e in store.entries()] == [digest]
    assert store.load(digest).canonical_digest() == digest


def _same_trace_writer(root: str) -> None:
    store = TraceStore(root, compact_threshold=2)
    for _ in range(8):
        store.ingest(make_trace(99, 0))


def test_reingest_is_cheap_noop(tmp_path):
    """Satellite: ingesting an already-present digest must not rewrite
    the payload or touch the manifest layers."""
    store = TraceStore(str(tmp_path))
    trace = make_trace(0, 0)
    (entry,) = store.ingest(trace)
    payload = store.path_for(entry.digest)
    entry_file = store.entry_path(entry.digest)
    payload_stat = os.stat(payload)
    entry_stat = os.stat(entry_file)

    (again,) = store.ingest(trace)
    assert again is entry  # the in-memory row, not a re-serialization
    assert os.stat(payload).st_mtime_ns == payload_stat.st_mtime_ns
    assert os.stat(payload).st_ino == payload_stat.st_ino
    assert os.stat(entry_file).st_mtime_ns == entry_stat.st_mtime_ns


def test_atomic_manifest_write_leaves_no_tmp(tmp_path):
    store = TraceStore(str(tmp_path), compact_threshold=0)
    for i in range(5):
        store.ingest(make_trace(1, i))
    store.compact()
    stray = [p for p in (tmp_path / "traces").rglob("*.tmp")]
    assert stray == []


def test_namespaces_are_isolated(tmp_path):
    root = TraceStore(str(tmp_path))
    tenant_a = root.namespace_store("team-a")
    tenant_b = root.namespace_store("team-b")
    tenant_a.ingest(make_trace(7, 7))
    tenant_b.ingest(make_trace(8, 8))
    assert len(tenant_a) == 1
    assert len(tenant_b) == 1
    assert len(root) == 0
    assert TraceStore(str(tmp_path), namespace="team-a").entries()
    from repro.corpus.store import list_namespaces

    assert list_namespaces(str(tmp_path)) == ["team-a", "team-b"]


def test_invalid_namespace_rejected(tmp_path):
    from repro.corpus import CorpusError

    root = TraceStore(str(tmp_path))
    for bad in ("", ".", "../evil", "a/b", "x" * 65):
        with pytest.raises(CorpusError):
            root.namespace_store(bad)
    with pytest.raises(CorpusError):
        root.namespace_store("ok").namespace_store("nested")


def test_refresh_sees_other_writers(tmp_path):
    a = TraceStore(str(tmp_path))
    b = TraceStore(str(tmp_path))
    trace = make_trace(3, 3)
    (entry,) = a.ingest(trace)
    assert entry.digest not in b
    # get() refreshes on a miss instead of failing.
    assert b.get(entry.digest).digest == entry.digest
