"""Tests for the StrictMode thread-policy checker (§7 related work)."""

import pytest

from repro.android import (
    Activity,
    AndroidSystem,
    Ctx,
    StrictModeViolationError,
    UIEvent,
    blocking_io,
)
from repro.android.errors import AppCrashError


class IOActivity(Activity):
    def on_create(self, ctx: Ctx) -> None:
        self.register_button(ctx, "mainIO", on_click=self.on_main_io)
        self.register_button(ctx, "bgIO", on_click=self.on_bg_io)

    def on_main_io(self, ctx: Ctx) -> None:
        blocking_io(ctx, "disk-read", "load thumbnails")

    def on_bg_io(self, ctx: Ctx) -> None:
        def worker(tctx: Ctx):
            blocking_io(tctx, "network", "fetch feed")

        ctx.fork(worker, name="io-worker")


def booted(enable=True, **kwargs):
    system = AndroidSystem(seed=0)
    if enable:
        system.strict_mode.enable(**kwargs)
    system.launch(IOActivity)
    system.run_to_quiescence()
    return system


class TestStrictMode:
    def test_disabled_by_default(self):
        system = booted(enable=False)
        system.fire(UIEvent("click", "mainIO"))
        system.run_to_quiescence()
        assert system.strict_mode.violations == []

    def test_main_thread_io_flagged(self):
        system = booted()
        system.fire(UIEvent("click", "mainIO"))
        system.run_to_quiescence()
        (violation,) = system.strict_mode.violations
        assert violation.kind == "disk-read"
        assert violation.thread == "main"
        assert "thumbnails" in violation.detail
        assert "StrictMode" in str(violation)

    def test_background_io_allowed(self):
        system = booted()
        system.fire(UIEvent("click", "bgIO"))
        system.run_to_quiescence()
        assert system.strict_mode.violations == []

    def test_kind_filter(self):
        system = booted(kinds=["network"])
        system.fire(UIEvent("click", "mainIO"))  # disk-read: not detected
        system.run_to_quiescence()
        assert system.strict_mode.violations == []

    def test_penalty_death_raises(self):
        system = booted(penalty_death=True)
        system.fire(UIEvent("click", "mainIO"))
        with pytest.raises(AppCrashError) as info:
            system.run_to_quiescence()
        assert isinstance(info.value.original, StrictModeViolationError)

    def test_unknown_kind_rejected(self):
        system = booted()
        with pytest.raises(ValueError):
            blocking_io(system.env.main_ctx, "telepathy")

    def test_orthogonal_to_race_detection(self):
        """StrictMode violations are a policy report, not trace content:
        the generated trace is unchanged."""
        from repro.core import validate_trace

        flagged = booted()
        flagged.fire(UIEvent("click", "mainIO"))
        flagged.run_to_quiescence()
        trace_flagged = flagged.finish()

        silent = booted(enable=False)
        silent.fire(UIEvent("click", "mainIO"))
        silent.run_to_quiescence()
        trace_silent = silent.finish()

        validate_trace(trace_flagged)
        assert [op.render() for op in trace_flagged] == [
            op.render() for op in trace_silent
        ]
