"""Tests for the suspiciousness feedback loop: per-location scoring,
index mining, and guided exploration's use (and non-use) of the signal."""

import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.paper_traces import figure4_trace
from repro.apps.registry import DEMO_APPS
from repro.core.classification import RaceCategory
from repro.core.race_detector import RaceDetector
from repro.explorer import (
    GuidedExplorer,
    LocationSignal,
    MonkeyExplorer,
    SuspicionIndex,
    signal_document,
)


def _document(trace, app="app", events=(), escalated=False):
    detector = RaceDetector(trace)
    report = detector.detect()
    return signal_document(
        app, trace, detector.hb, report, events=events, escalated=escalated
    ), report


class TestScoring:
    def test_docs_worked_example(self):
        """The worked example in docs/exploration.md, pinned: 10 pairs,
        4 racy, 2 near misses, 2 categories, 1 of 2 traces escalated."""
        signal = LocationSignal(location="L")
        signal.merge(
            {
                "conflicting_pairs": 5,
                "racy_pairs": 2,
                "near_misses": 1,
                "categories": ["multithreaded"],
            },
            events=["click:a"],
            escalated=True,
        )
        signal.merge(
            {
                "conflicting_pairs": 5,
                "racy_pairs": 2,
                "near_misses": 1,
                "categories": ["co-enabled"],
            },
            events=["click:a"],
            escalated=False,
        )
        assert signal.traces == 2
        assert signal.score() == pytest.approx(0.35)

    def test_race_free_location_scores_zero(self):
        signal = LocationSignal(location="L")
        signal.merge(
            {"conflicting_pairs": 8, "racy_pairs": 0, "near_misses": 0,
             "categories": []},
            events=["click:a"],
            escalated=False,
        )
        assert signal.score() == 0.0
        # Race-free runs teach nothing about provoking events either.
        assert signal.events == {}

    def test_unordered_pair_density_dominates(self):
        """A location with unordered conflicting pairs outscores an
        otherwise-identical race-free one."""
        racy = LocationSignal(location="racy")
        quiet = LocationSignal(location="quiet")
        racy.merge(
            {"conflicting_pairs": 10, "racy_pairs": 4, "near_misses": 0,
             "categories": ["multithreaded"]},
            events=["click:a"],
            escalated=False,
        )
        quiet.merge(
            {"conflicting_pairs": 10, "racy_pairs": 0, "near_misses": 0,
             "categories": []},
            events=["click:a"],
            escalated=False,
        )
        assert racy.score() > quiet.score() == 0.0

    def test_scores_stay_in_unit_interval(self):
        signal = LocationSignal(location="L")
        signal.merge(
            {
                "conflicting_pairs": 4,
                "racy_pairs": 4,
                "near_misses": 0,
                "categories": [c.value for c in RaceCategory],
            },
            events=["click:a"],
            escalated=True,
        )
        assert 0.0 <= signal.score() <= 1.0


class TestCollectSignals:
    def test_figure4_racy_location_signals(self):
        doc, report = _document(figure4_trace(), events=["back"])
        assert report.races, "figure 4 must race"
        racy_location = report.races[0].location
        locations = doc["locations"]
        assert racy_location in locations
        signal = locations[racy_location]
        assert signal["racy_pairs"] >= 1
        assert signal["conflicting_pairs"] >= signal["racy_pairs"]
        assert signal["categories"]

    def test_signals_deterministic(self):
        doc_a, _ = _document(figure4_trace(), events=["back"])
        doc_b, _ = _document(figure4_trace(), events=["back"])
        assert doc_a == doc_b

    def test_racy_location_ranks_top(self):
        doc, report = _document(figure4_trace())
        index = SuspicionIndex()
        index.observe(doc)
        top = index.top("app", 1)
        assert top and top[0][0] == report.races[0].location
        assert top[0][1] > 0.0


class TestSuspicionIndex:
    def test_empty_index_uniform(self):
        index = SuspicionIndex()
        assert index.is_empty()
        assert index.scores("any") == {}
        assert index.event_affinity("any") == {}

    def test_mine_filters_by_app(self):
        doc, _ = _document(figure4_trace(), app="music")
        records = [
            types.SimpleNamespace(extra={"suspicion": doc}),
            types.SimpleNamespace(extra={}),  # no signal: skipped
            types.SimpleNamespace(extra={"suspicion": [doc, doc]}),  # multi
        ]
        index = SuspicionIndex.mine(records)
        assert index.apps == ["music"]
        assert SuspicionIndex.mine(records, app="other").is_empty()

    def test_round_trip_preserves_scores(self):
        doc, _ = _document(figure4_trace(), events=["back"], escalated=True)
        index = SuspicionIndex()
        index.observe(doc)
        restored = SuspicionIndex.from_dict(index.to_dict())
        assert restored.scores("app") == index.scores("app")
        assert restored.event_affinity("app") == index.event_affinity("app")


@st.composite
def signal_documents(draw):
    conflicting = draw(st.integers(min_value=0, max_value=20))
    racy = draw(st.integers(min_value=0, max_value=conflicting))
    near = draw(st.integers(min_value=0, max_value=conflicting - racy))
    categories = draw(
        st.lists(
            st.sampled_from([c.value for c in RaceCategory]),
            unique=True,
            max_size=3,
        )
    )
    events = draw(
        st.lists(
            st.sampled_from(["click:a", "click:b", "text:f='x'", "back"]),
            unique=True,
            max_size=3,
        )
    )
    return {
        "version": 1,
        "app": "app",
        "trace_name": "t",
        "events": events,
        "escalated": draw(st.booleans()),
        "locations": {
            "Loc@1.field": {
                "conflicting_pairs": conflicting,
                "racy_pairs": racy,
                "near_misses": near,
                "categories": categories,
            }
        },
    }


class TestDuplicationInvariance:
    @settings(max_examples=50, deadline=None)
    @given(
        docs=st.lists(signal_documents(), min_size=1, max_size=4),
        copies=st.integers(min_value=2, max_value=4),
    )
    def test_scores_invariant_under_trace_duplication(self, docs, copies):
        """Ten copies of the same run must not look ten times as
        suspicious: every signal is a ratio."""
        once = SuspicionIndex()
        duplicated = SuspicionIndex()
        for doc in docs:
            once.observe(doc)
            for _ in range(copies):
                duplicated.observe(doc)
        assert duplicated.scores("app") == pytest.approx(once.scores("app"))
        assert duplicated.event_affinity("app") == pytest.approx(
            once.event_affinity("app")
        )


class TestGuidedExplorer:
    def test_empty_index_degrades_to_monkey_exactly(self):
        """With no prior signal, the first guided session is bit-for-bit
        MonkeyExplorer's sequence — same vocabulary, same draws."""
        for seed in (0, 1, 5):
            app = DEMO_APPS["music-player"]
            guided = GuidedExplorer(app, budget=5, sequences=1, seed=seed).run()
            monkey = MonkeyExplorer(app, budget=5, seed=seed).run()
            assert guided.sessions[0].kind == "random"
            assert guided.sessions[0].sequence == tuple(monkey.events_fired)

    def test_guided_run_deterministic(self):
        app = DEMO_APPS["music-player"]

        def explore():
            seed_doc, _ = _document(
                figure4_trace(), app=app.name, events=["back"]
            )
            index = SuspicionIndex()
            index.observe(seed_doc)
            return GuidedExplorer(
                app, index=index, budget=4, sequences=3, seed=0
            ).run()

        first, second = explore(), explore()
        assert [s.sequence for s in first.sessions] == [
            s.sequence for s in second.sessions
        ]
        assert first.races == second.races

    def test_provenance_recorded(self):
        app = DEMO_APPS["music-player"]
        result = GuidedExplorer(
            app, budget=3, sequences=2, seed=0, history_ref="hist-dir"
        ).run()
        assert result.store.runs
        for run in result.store.runs:
            assert run.strategy.startswith("guided")
            assert run.seed is not None
            assert run.history_ref == "hist-dir"

    def test_online_index_learns_mid_run(self):
        """Even with a cold prior, session results feed the online index,
        so later sessions switch from random to guided."""
        app = DEMO_APPS["music-player"]
        result = GuidedExplorer(app, budget=4, sequences=4, seed=0).run()
        kinds = [session.kind for session in result.sessions]
        assert kinds[0] == "random"
        if result.races:
            assert any(kind != "random" for kind in kinds[1:])

    def test_budget_and_sequences_validated(self):
        app = DEMO_APPS["music-player"]
        with pytest.raises(ValueError):
            GuidedExplorer(app, budget=0)
        with pytest.raises(ValueError):
            GuidedExplorer(app, sequences=0)
