"""Calibration tests: every synthetic subject reproduces its Table 2/3 row.

Scale note: race counts, thread counts, task counts and field counts are
scale-invariant by construction; only trace length tracks the paper's
value at scale 1.0 (checked for a subset here, for the full set in the
benchmarks).
"""

import pytest

from repro.apps.specs import (
    ALL_SPECS,
    OPEN_SOURCE_SPECS,
    PROPRIETARY_SPECS,
    SPEC_BY_NAME,
    RaceQuota,
    open_source_totals,
)
from repro.apps.synthetic import BuildPlan, SyntheticApp
from repro.bench.runner import run_paper_app
from repro.core import RaceCategory, detect_races, validate_trace
from repro.core.classification import RaceCategory

SCALE = 0.3


@pytest.fixture(scope="module")
def results():
    return {spec.name: run_paper_app(spec, scale=SCALE, seed=5) for spec in ALL_SPECS}


class TestSpecs:
    def test_fifteen_subjects(self):
        assert len(ALL_SPECS) == 15
        assert len(OPEN_SOURCE_SPECS) == 10
        assert len(PROPRIETARY_SPECS) == 5

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            RaceQuota(2, 3)

    def test_open_source_totals_match_paper(self):
        totals = open_source_totals()
        assert totals["multithreaded"] == (27, 15)
        assert totals["cross_posted"] == (147, 44)
        assert totals["co_enabled"] == (32, 17)
        assert totals["delayed"] == (6, 2)

    def test_paper_grand_totals(self):
        """215 reports / 80 true positives on the open-source apps (§6,
        including the unknown category)."""
        reported = sum(s.total_reported for s in OPEN_SOURCE_SPECS)
        true = sum(s.total_true for s in OPEN_SOURCE_SPECS)
        assert reported == 215
        assert true == 80


class TestBuildPlan:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_plan_feasible_for_every_spec(self, spec):
        plan = BuildPlan(spec, 1.0)
        assert plan.filler_plain >= 0
        assert plan.filler_loopers >= 0
        assert plan.filler_tasks >= 0
        assert plan.filler_fields >= 0
        assert len(plan.events) <= 7  # the paper's event-sequence bound

    def test_infeasible_spec_rejected(self):
        from dataclasses import replace

        bad = replace(SPEC_BY_NAME["Aard Dictionary"], threads_plain=0)
        with pytest.raises(ValueError):
            BuildPlan(bad, 1.0)


class TestTable2Calibration:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_thread_field_task_counts_exact(self, spec, results):
        result = results[spec.name]
        validate_trace(result.trace)
        assert result.stats.fields == spec.fields
        assert result.stats.threads_without_queues == spec.threads_plain
        assert result.stats.threads_with_queues == spec.threads_looper
        assert result.stats.async_tasks == spec.async_tasks

    @pytest.mark.parametrize(
        "name", ["Aard Dictionary", "Music Player", "Messenger"]
    )
    def test_trace_length_tracks_paper_at_full_scale(self, name):
        result = run_paper_app(SPEC_BY_NAME[name], scale=1.0, seed=5)
        paper = SPEC_BY_NAME[name].trace_length
        assert abs(len(result.trace) - paper) / paper < 0.05


class TestTable3Calibration:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_race_counts_per_category_exact(self, spec, results):
        result = results[spec.name]
        counts = result.category_counts()
        for category in RaceCategory:
            reported, true = counts[category]
            quota = spec.quota(category)
            assert reported == quota.reported, category
            if not spec.proprietary:
                assert true == quota.true, category
            else:
                assert true is None

    @pytest.mark.parametrize("spec", OPEN_SOURCE_SPECS, ids=lambda s: s.name)
    def test_ground_truth_registry_complete(self, spec, results):
        result = results[spec.name]
        gt = result.ground_truth
        assert len(gt) == spec.total_reported
        reported_fields = {race.field_name for race in result.report.races}
        assert reported_fields == set(gt)


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_paper_app(SPEC_BY_NAME["Music Player"], scale=SCALE, seed=9)
        b = run_paper_app(SPEC_BY_NAME["Music Player"], scale=SCALE, seed=9)
        key = lambda r: [(x.location, x.category.value) for x in r.report.races]
        assert key(a) == key(b)
        assert [op.render() for op in a.trace] == [op.render() for op in b.trace]

    def test_race_counts_stable_across_seeds(self):
        spec = SPEC_BY_NAME["Messenger"]
        counts = set()
        for seed in (1, 2, 3):
            result = run_paper_app(spec, scale=SCALE, seed=seed)
            counts.add(len(result.report.races))
        assert counts == {spec.total_reported}


class TestReductionRatio:
    @pytest.mark.parametrize(
        "name", ["Aard Dictionary", "OpenSudoku", "Flipkart"]
    )
    def test_ratio_in_paper_band_at_full_scale(self, name):
        result = run_paper_app(SPEC_BY_NAME[name], scale=1.0, seed=5)
        assert 0.012 <= result.report.reduction_ratio <= 0.26
