"""Unit tests for ExecutionTrace construction and metadata."""

import pytest

from repro.core.operations import (
    attachq,
    begin,
    enable,
    end,
    fork,
    looponq,
    post,
    read,
    threadexit,
    threadinit,
    write,
)
from repro.core.trace import (
    ExecutionTrace,
    InvalidTraceError,
    TraceBuilder,
    field_of_location,
)


def simple_looper_trace():
    return ExecutionTrace(
        [
            threadinit("t1"),
            attachq("t1"),
            looponq("t1"),
            threadinit("t0"),
            post("t0", "p", "t1"),
            begin("t1", "p"),
            write("t1", "Obj@1.x"),
            end("t1", "p"),
        ],
        name="simple",
    )


class TestIngest:
    def test_indices_assigned_sequentially(self):
        trace = simple_looper_trace()
        assert [op.index for op in trace] == list(range(len(trace)))

    def test_threads_in_first_appearance_order(self):
        trace = simple_looper_trace()
        assert trace.threads == ["t1", "t0"]

    def test_task_info_positions(self):
        trace = simple_looper_trace()
        info = trace.tasks["p"]
        assert info.post_index == 4
        assert info.begin_index == 5
        assert info.end_index == 7
        assert info.thread == "t1"
        assert info.poster_thread == "t0"

    def test_attach_and_loop_indices(self):
        trace = simple_looper_trace()
        assert trace.attach_index["t1"] == 1
        assert trace.loop_index["t1"] == 2

    def test_double_attach_rejected(self):
        with pytest.raises(InvalidTraceError):
            ExecutionTrace([threadinit("t"), attachq("t"), attachq("t")])

    def test_loop_without_attach_rejected(self):
        with pytest.raises(InvalidTraceError):
            ExecutionTrace([threadinit("t"), looponq("t")])

    def test_double_post_of_same_task_rejected(self):
        with pytest.raises(InvalidTraceError):
            ExecutionTrace(
                [
                    threadinit("t"),
                    attachq("t"),
                    post("t", "p", "t"),
                    post("t", "p", "t"),
                ]
            )

    def test_nested_begin_rejected(self):
        with pytest.raises(InvalidTraceError):
            ExecutionTrace(
                [
                    threadinit("t"),
                    attachq("t"),
                    looponq("t"),
                    post("t", "p", "t"),
                    post("t", "q", "t"),
                    begin("t", "p"),
                    begin("t", "q"),
                ]
            )

    def test_end_without_matching_begin_rejected(self):
        with pytest.raises(InvalidTraceError):
            ExecutionTrace(
                [threadinit("t"), attachq("t"), looponq("t"), end("t", "p")]
            )

    def test_begin_on_wrong_thread_rejected(self):
        with pytest.raises(InvalidTraceError):
            ExecutionTrace(
                [
                    threadinit("t"),
                    threadinit("u"),
                    attachq("t"),
                    attachq("u"),
                    looponq("u"),
                    post("t", "p", "t"),
                    begin("u", "p"),
                ]
            )


class TestHelpers:
    def test_task_of_inside_and_outside_tasks(self):
        trace = simple_looper_trace()
        assert trace.task_of(6) == ("t1", "p")  # the write
        assert trace.task_of(5) == ("t1", "p")  # begin belongs to the task
        assert trace.task_of(7) == ("t1", "p")  # end belongs to the task
        assert trace.task_of(0) is None
        assert trace.task_of(4) is None  # post from t0 outside any task

    def test_looped_before(self):
        trace = simple_looper_trace()
        assert not trace.looped_before("t1", 2)  # loopOnQ itself
        assert trace.looped_before("t1", 5)
        assert not trace.looped_before("t0", 4)

    def test_post_chain_single_level(self):
        trace = simple_looper_trace()
        assert trace.post_chain(6) == [4]

    def test_post_chain_multi_level(self):
        # p posts q; q's chain should be [post(p), post(q)].
        trace = ExecutionTrace(
            [
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                threadinit("u"),
                post("u", "p", "t"),
                begin("t", "p"),
                post("t", "q", "t"),
                end("t", "p"),
                begin("t", "q"),
                write("t", "o.x"),
                end("t", "q"),
            ]
        )
        assert trace.post_chain(9) == [4, 6]

    def test_post_chain_empty_outside_tasks(self):
        trace = simple_looper_trace()
        assert trace.post_chain(0) == []


class TestStatistics:
    def test_locations_and_fields(self):
        trace = ExecutionTrace(
            [
                threadinit("t"),
                write("t", "A@1.x"),
                write("t", "A@2.x"),
                write("t", "A@1.y"),
                read("t", "B@1.z"),
            ]
        )
        assert set(trace.locations()) == {"A@1.x", "A@2.x", "A@1.y", "B@1.z"}
        # A.x counted once despite two objects (paper's Fields column).
        assert set(trace.fields()) == {"A.x", "A.y", "B.z"}

    def test_field_of_location(self):
        assert field_of_location("Cls@3.name") == "Cls.name"
        assert field_of_location("obj.f") == "obj.f"
        assert field_of_location("bare") == "bare"

    def test_thread_queue_partition(self):
        trace = simple_looper_trace()
        assert trace.threads_with_queue() == ["t1"]
        assert trace.threads_without_queue() == ["t0"]

    def test_async_task_count_counts_begun_tasks(self):
        trace = simple_looper_trace()
        assert trace.async_task_count() == 1
        # A posted-but-never-begun task does not count.
        trace2 = ExecutionTrace(
            [threadinit("t"), attachq("t"), post("t", "never", "t")]
        )
        assert trace2.async_task_count() == 0


class TestCancellation:
    def test_without_cancelled_posts_removes_post_ops(self):
        trace = ExecutionTrace(
            [
                threadinit("t"),
                attachq("t"),
                post("t", "gone", "t"),
                post("t", "kept", "t"),
            ]
        )
        pruned = trace.without_cancelled_posts(["gone"])
        assert len(pruned) == 3
        assert "gone" not in pruned.tasks
        assert "kept" in pruned.tasks


class TestSerialization:
    def test_jsonl_roundtrip_preserves_everything(self):
        trace = ExecutionTrace(
            [
                threadinit("t1"),
                attachq("t1"),
                looponq("t1"),
                enable("t1", "click:btn"),
                post("t1", "h", "t1", delay=30, event="click:btn"),
                begin("t1", "h"),
                write("t1", "O@1.f"),
                end("t1", "h"),
                fork("t1", "t2"),
                threadinit("t2"),
                threadexit("t2"),
            ]
        )
        restored = ExecutionTrace.from_jsonl(trace.to_jsonl())
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert a.render() == b.render()
        assert restored.tasks["h"].delay == 30
        assert restored.tasks["h"].event == "click:btn"

    def test_from_jsonl_skips_comments_and_blanks(self):
        text = '# comment\n\n{"kind": "threadinit", "thread": "t"}\n'
        trace = ExecutionTrace.from_jsonl(text)
        assert len(trace) == 1


class TestTraceBuilder:
    def test_unique_task_renaming(self):
        builder = TraceBuilder()
        assert builder.unique_task("onClick") == "onClick"
        assert builder.unique_task("onClick") == "onClick#2"
        assert builder.unique_task("onClick") == "onClick#3"
        assert builder.unique_task("other") == "other"

    def test_build_reindexes(self):
        builder = TraceBuilder("b")
        builder.add(threadinit("t"))
        builder.extend([attachq("t"), looponq("t")])
        trace = builder.build()
        assert trace.name == "b"
        assert [op.index for op in trace] == [0, 1, 2]
