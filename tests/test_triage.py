"""Tests for the vector-clock triage tier (:mod:`repro.core.vc_triage`).

The triage detector soundly *under-approximates* the paper's Android
happens-before relation: every edge the closure derives is also derived
by the streaming pass, so the set of locations the closure reports racy
is always a subset of the triage's racy-location set.  That subset
property — checked here differentially against the graph engine across
presets, coalescing, and backends — is exactly what makes a zero-race
triage verdict a safe reason to skip the closure.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.ladder import (
    ladder_trace,
    lock_handoff_trace,
    scaled_ladder_trace,
    wide_trace,
)
from repro.core import (
    TRIAGE_OFF,
    TRIAGE_VC,
    TRIAGES,
    detect_races,
    triage_races,
)
from repro.core.operations import (
    attachq,
    begin,
    end,
    fork,
    join,
    looponq,
    post,
    read,
    threadexit,
    threadinit,
    write,
)
from repro.core.race_detector import DetectorConfig
from repro.core.trace import ExecutionTrace
from repro.core.vector_clock import VCRace, VCReport, detect_races_vc
from repro.core.happens_before import BACKEND_BITMASK, BACKEND_CHAINS

from tests.test_property import run_random_app

SUPPRESS = [HealthCheck.too_slow]


def trace_of(*ops):
    return ExecutionTrace(list(ops))


def closure_locations(trace, **kw):
    return {r.location for r in detect_races(trace, **kw).races}


def triage_locations(trace):
    return set(triage_races(trace).racy_locations())


def assert_subset(trace, **kw):
    closure = closure_locations(trace, **kw)
    vc = triage_locations(trace)
    assert closure <= vc, (sorted(closure - vc), sorted(vc))


class TestSoundness:
    """Closure-racy locations ⊆ triage-racy locations, always."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
    def test_random_apps(self, seed):
        trace = run_random_app(seed).build_trace()
        vc = triage_locations(trace)
        for coalesce in (True, False):
            for backend in (BACKEND_BITMASK, BACKEND_CHAINS):
                closure = closure_locations(
                    trace, coalesce=coalesce, backend=backend
                )
                assert closure <= vc, (coalesce, backend, sorted(closure - vc))

    @pytest.mark.parametrize(
        "trace",
        [
            ladder_trace(3, 4),
            ladder_trace(4, 4, loopers=3),
            ladder_trace(3, 5, rogues=0),
            wide_trace(8, tasks_per_thread=4),
            lock_handoff_trace(),
            scaled_ladder_trace(3_000),
        ],
        ids=lambda t: t.name,
    )
    def test_synthetic_families(self, trace):
        assert_subset(trace)

    def test_lock_handoff_escalates(self):
        """The lock-handoff pattern is race-free under the closure (the
        paper's LOCK rule records observed cross-thread order) but the
        triage pass may over-report — it must escalate, never filter a
        racy trace."""
        trace = lock_handoff_trace()
        assert closure_locations(trace) == set()
        # Whatever the triage says, it is allowed to over-approximate
        # (escalation) but a filter verdict would also be correct; the
        # subset property is the invariant.
        assert closure_locations(trace) <= triage_locations(trace)

    def test_demo_apps(self):
        from repro.apps.registry import DEMO_APPS

        for name in ("dictionary", "browser", "notes"):
            system = DEMO_APPS[name].build(seed=3)
            system.run_to_quiescence()
            for event in list(system.enabled_events()):
                if event.kind == "click":
                    system.fire(event)
                    system.run_to_quiescence()
            assert_subset(system.finish())


class TestSingleThreadedRaces:
    def test_catches_what_the_classic_detector_misses(self):
        """Two unordered tasks on one looper: invisible to the classic
        vector-clock detector (full program order), racy to the paper's
        closure — and racy to the triage tier (per-task epochs)."""
        trace = trace_of(
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            threadinit("u"),
            threadinit("v"),
            post("u", "p1", "t"),
            post("v", "p2", "t"),
            begin("t", "p1"),
            write("t", "x", in_task="p1"),
            end("t", "p1"),
            begin("t", "p2"),
            write("t", "x", in_task="p2"),
            end("t", "p2"),
        )
        assert detect_races_vc(trace).races == []  # classic: blind
        assert "x" in closure_locations(trace)  # paper: race
        assert "x" in triage_locations(trace)  # triage: race (escalate)

    def test_fifo_ordered_tasks_do_not_race(self):
        """Two non-delayed posts from one thread: FIFO orders the tasks,
        so the triage pass must not report a race (no false escalation
        pressure from same-looper FIFO chains)."""
        trace = trace_of(
            threadinit("t"),
            attachq("t"),
            looponq("t"),
            threadinit("u"),
            post("u", "p1", "t"),
            post("u", "p2", "t"),
            begin("t", "p1"),
            write("t", "x", in_task="p1"),
            end("t", "p1"),
            begin("t", "p2"),
            write("t", "x", in_task="p2"),
            end("t", "p2"),
        )
        assert triage_locations(trace) == set()
        assert closure_locations(trace) == set()

    def test_fork_join_ordering_respected(self):
        trace = trace_of(
            threadinit("m"),
            write("m", "x"),
            fork("m", "w"),
            threadinit("w"),
            write("w", "x"),
            threadexit("w"),
            join("m", "w"),
            write("m", "x"),
        )
        assert triage_locations(trace) == set()


class TestClassicDetectorAudits:
    """Satellite: the classic detector now counts its silently dropped
    edges instead of losing them."""

    def test_dangling_join_counted(self):
        report = detect_races_vc(
            trace_of(
                threadinit("m"),
                join("m", "ghost"),  # no threadexit snapshot: edge dropped
            )
        )
        assert report.dangling_joins == 1
        assert report.orphan_begins == 0

    def test_orphan_begin_counted(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                begin("t", "never-posted"),
                end("t", "never-posted"),
            )
        )
        assert report.orphan_begins == 1
        assert report.dangling_joins == 0

    def test_clean_trace_has_zero_audit_counts(self):
        report = detect_races_vc(
            trace_of(
                threadinit("m"),
                fork("m", "w"),
                threadinit("w"),
                threadexit("w"),
                join("m", "w"),
            )
        )
        assert report.dangling_joins == 0
        assert report.orphan_begins == 0

    def test_triage_counts_dangling_edges_too(self):
        report = triage_races(
            trace_of(
                threadinit("m"),
                join("m", "ghost"),
            )
        )
        assert report.dangling_joins == 1


class TestVCReportSerialization:
    """Satellite: VCReport/VCRace round-trip like RaceReport does."""

    def roundtrip(self, report):
        data = json.loads(json.dumps(report.to_dict(), sort_keys=True))
        return VCReport.from_dict(data)

    def test_racy_report_roundtrips(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                write("t", "x"),
                write("u", "x"),
            )
        )
        assert report.races
        back = self.roundtrip(report)
        assert back.to_dict() == report.to_dict()
        assert [str(r) for r in back.races] == [str(r) for r in report.races]

    def test_triage_report_roundtrips(self):
        report = triage_races(ladder_trace(3, 4))
        back = self.roundtrip(report)
        assert back.to_dict() == report.to_dict()
        assert back.racy_locations() == report.racy_locations()

    def test_vcrace_roundtrip_preserves_access(self):
        report = detect_races_vc(
            trace_of(threadinit("t"), threadinit("u"), write("t", "x"), write("u", "x"))
        )
        race = report.races[0]
        back = VCRace.from_dict(json.loads(json.dumps(race.to_dict())))
        assert back.access.index == race.access.index
        assert back.access.kind is race.access.kind
        assert back.location == race.location

    def test_report_defaults_tolerate_old_payloads(self):
        data = detect_races_vc(trace_of(threadinit("t"))).to_dict()
        for legacy_missing in ("dangling_joins", "orphan_begins", "trace_name"):
            data.pop(legacy_missing)
        back = VCReport.from_dict(data)
        assert back.dangling_joins == 0
        assert back.trace_name == "trace"


class TestDetectorConfig:
    def test_triage_values_validated(self):
        DetectorConfig(triage=TRIAGE_OFF)
        DetectorConfig(triage=TRIAGE_VC)
        with pytest.raises(ValueError):
            DetectorConfig(triage="fast")

    def test_triage_excluded_from_canonical_dict(self):
        """Cache and history keys must not move when the triage knob
        does — escalated traces run the exact same closure."""
        on = DetectorConfig(triage=TRIAGE_VC)
        off = DetectorConfig(triage=TRIAGE_OFF)
        assert on.canonical_dict() == off.canonical_dict()
        assert on.digest() == off.digest()
        assert TRIAGE_VC in TRIAGES and TRIAGE_OFF in TRIAGES


class TestBatchTriage:
    """Two-phase corpus flow: cheap vc pass, closure only on escalation."""

    @pytest.fixture()
    def corpus(self, tmp_path):
        from repro.corpus import TraceStore

        store = TraceStore(tmp_path / "corpus")
        store.ingest(self._quiet_trace(), app="quiet")
        store.ingest(ladder_trace(3, 4, name="racy-ladder"), app="racy")
        store.ingest(lock_handoff_trace(), app="handoff")
        return store

    @staticmethod
    def _quiet_trace():
        return trace_of(
            threadinit("m"),
            write("m", "a.x"),
            fork("m", "w"),
            threadinit("w"),
            read("w", "a.x"),
        )

    def test_filtered_and_escalated_counts(self, corpus):
        from repro.corpus import BatchAnalyzer, aggregate

        config = DetectorConfig(triage=TRIAGE_VC)
        batch = BatchAnalyzer(corpus, cache=None, jobs=1, config=config).analyze()
        assert batch.triage_filtered == 1  # quiet
        assert batch.triage_escalated == 2  # racy-ladder + lock-handoff
        filtered = batch.filtered()
        assert len(filtered) == 1 and filtered[0].entry.app == "quiet"
        assert filtered[0].ok and filtered[0].report is None
        assert "triage" in batch.summary()

        report = aggregate(batch)
        assert report.triage_mode == TRIAGE_VC
        assert report.triage_filtered == 1
        assert report.traces_analyzed == 3
        assert report.to_dict()["triage"] == {
            "mode": TRIAGE_VC,
            "filtered": 1,
            "escalated": 2,
        }
        assert "triage (vc)" in report.render()

    def test_triage_off_leaves_report_untouched(self, corpus):
        from repro.corpus import BatchAnalyzer, aggregate

        batch = BatchAnalyzer(corpus, cache=None, jobs=1).analyze()
        assert batch.triage_filtered == 0 and batch.triage_escalated == 0
        report = aggregate(batch)
        assert report.triage_mode == TRIAGE_OFF
        assert "triage" not in report.to_dict()
        assert "triage" not in report.render()

    def test_escalated_reports_byte_identical_to_closure_only(self, corpus):
        """The zero-missed-races contract: every trace the closure finds
        racy is escalated, and its escalated report digests identically
        to the closure-only run's."""
        from repro.corpus import BatchAnalyzer
        from repro.obs import report_digest

        plain = BatchAnalyzer(corpus, cache=None, jobs=1).analyze()
        triaged = BatchAnalyzer(
            corpus, cache=None, jobs=1, config=DetectorConfig(triage=TRIAGE_VC)
        ).analyze()
        plain_by_digest = {r.entry.digest: r for r in plain.results}
        for result in triaged.results:
            baseline = plain_by_digest[result.entry.digest]
            if result.filtered:
                assert baseline.report is not None
                assert baseline.report.races == []  # zero missed races
            else:
                assert report_digest(result.report.to_dict()) == report_digest(
                    baseline.report.to_dict()
                )

    def test_filtered_verdicts_are_never_cached(self, corpus, tmp_path):
        """The cache key excludes the triage knob, so a filtered verdict
        must not poison a later triage-off run with a missing report."""
        from repro.corpus import BatchAnalyzer, ResultCache

        cache = ResultCache(corpus.root)
        config = DetectorConfig(triage=TRIAGE_VC)
        triaged = BatchAnalyzer(corpus, cache=cache, jobs=1, config=config).analyze()
        assert triaged.triage_filtered == 1
        plain = BatchAnalyzer(corpus, cache=cache, jobs=1).analyze()
        assert all(r.report is not None for r in plain.results)
        # Escalated reports were cached; the filtered one was analyzed fresh.
        assert plain.cache_hits == 2 and plain.cache_misses == 1

    def test_parallel_matches_serial(self, corpus):
        from repro.corpus import BatchAnalyzer

        config = DetectorConfig(triage=TRIAGE_VC)
        serial = BatchAnalyzer(corpus, cache=None, jobs=1, config=config).analyze()
        parallel = BatchAnalyzer(corpus, cache=None, jobs=2, config=config).analyze()
        assert serial.triage_filtered == parallel.triage_filtered
        assert serial.triage_escalated == parallel.triage_escalated
        from repro.obs import report_digest

        key = lambda b: {
            r.entry.digest: (
                r.filtered,
                report_digest(r.report.to_dict()) if r.report else None,
            )
            for r in b.results
        }
        assert key(serial) == key(parallel)


class TestJobQueueTriage:
    def test_complete_journals_and_replays_triage(self, tmp_path):
        from repro.service.jobs import JobQueue

        path = str(tmp_path / "jobs.jsonl")
        queue = JobQueue(path)
        job, _ = queue.submit("a" * 64, "b" * 64, trace_name="t", app="app")
        queue.next_job()
        queue.complete(job.job_id, race_count=0, triage="filtered")
        queue.close()
        replayed = JobQueue(path)
        back = replayed.get(job.job_id)
        assert back.triage == "filtered"
        assert back.race_count == 0
        replayed.close()
