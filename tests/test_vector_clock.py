"""Tests for the vector-clock detector and its cross-check against the
graph engine running the same (classic multithreaded) relation."""

import pytest

from repro.core.baselines import MULTITHREADED_ONLY
from repro.core.operations import (
    acquire,
    attachq,
    begin,
    end,
    fork,
    join,
    looponq,
    post,
    read,
    release,
    threadexit,
    threadinit,
    write,
)
from repro.core.race_detector import detect_races
from repro.core.trace import ExecutionTrace
from repro.core.vector_clock import (
    Epoch,
    VectorClock,
    detect_races_vc,
)


def trace_of(*ops):
    return ExecutionTrace(list(ops))


class TestVectorClockType:
    def test_tick_and_time(self):
        vc = VectorClock()
        assert vc.time_of("t") == 0
        vc.tick("t")
        vc.tick("t")
        assert vc.time_of("t") == 2

    def test_join_takes_pointwise_max(self):
        a = VectorClock({"t": 3, "u": 1})
        b = VectorClock({"u": 5, "v": 2})
        a.join(b)
        assert a.clocks == {"t": 3, "u": 5, "v": 2}

    def test_copy_is_independent(self):
        a = VectorClock({"t": 1})
        b = a.copy()
        b.tick("t")
        assert a.time_of("t") == 1

    def test_dominates(self):
        vc = VectorClock({"t": 3})
        assert vc.dominates("t", 3) and vc.dominates("t", 2)
        assert not vc.dominates("t", 4)
        assert not vc.dominates("u", 1)

    def test_epoch_happens_before(self):
        assert Epoch("t", 2).happens_before(VectorClock({"t": 2}))
        assert not Epoch("t", 3).happens_before(VectorClock({"t": 2}))


class TestDetection:
    def test_plain_write_write_race(self):
        report = detect_races_vc(
            trace_of(threadinit("t"), threadinit("u"), write("t", "x"), write("u", "x"))
        )
        assert report.racy_locations() == ["x"]
        assert report.races[0].kind == "write-write"

    def test_write_read_race(self):
        report = detect_races_vc(
            trace_of(threadinit("t"), threadinit("u"), write("t", "x"), read("u", "x"))
        )
        assert [r.kind for r in report.races] == ["write-read"]

    def test_read_write_race(self):
        report = detect_races_vc(
            trace_of(threadinit("t"), threadinit("u"), read("t", "x"), write("u", "x"))
        )
        assert [r.kind for r in report.races] == ["read-write"]

    def test_fork_orders(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                write("t", "x"),
                fork("t", "u"),
                threadinit("u"),
                write("u", "x"),
            )
        )
        assert report.races == []

    def test_join_orders(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                fork("t", "u"),
                threadinit("u"),
                write("u", "x"),
                threadexit("u"),
                join("t", "u"),
                read("t", "x"),
            )
        )
        assert report.races == []

    def test_lock_orders(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                acquire("t", "l"),
                write("t", "x"),
                release("t", "l"),
                acquire("u", "l"),
                write("u", "x"),
                release("u", "l"),
            )
        )
        assert report.races == []

    def test_post_orders_like_fork(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                threadinit("u"),
                write("u", "x"),
                post("u", "p", "t"),
                begin("t", "p"),
                read("t", "x"),
                end("t", "p"),
            )
        )
        assert report.races == []

    def test_misses_single_threaded_races(self):
        """The defining blind spot: full program order on looper threads."""
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                attachq("t"),
                looponq("t"),
                threadinit("u"),
                threadinit("v"),
                post("u", "p1", "t"),
                post("v", "p2", "t"),
                begin("t", "p1"),
                write("t", "x"),
                end("t", "p1"),
                begin("t", "p2"),
                write("t", "x"),
                end("t", "p2"),
            )
        )
        assert report.races == []

    def test_concurrent_reads_inflate_to_vector(self):
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                threadinit("v"),
                read("t", "x"),
                read("u", "x"),
                write("v", "x"),
            )
        )
        assert report.epochs_inflated >= 1
        assert report.racy_locations() == ["x"]

    def test_three_thread_stale_write_found(self):
        """w1(t) ∥ r(v) even though w2(u) ≺ r(v): the full-vector history
        still catches the stale-thread component."""
        report = detect_races_vc(
            trace_of(
                threadinit("t"),
                threadinit("u"),
                write("t", "x"),  # concurrent with everything on u,v
                write("u", "x"),  # races with t's write
                fork("u", "v"),
                threadinit("v"),
                read("v", "x"),  # ordered after u's write, not t's
            )
        )
        kinds = sorted(r.kind for r in report.races)
        assert "write-write" in kinds
        assert "write-read" in kinds  # the stale t-write vs v-read


class TestCrossCheck:
    """Two independent implementations of classic multithreaded HB — the
    vector-clock detector and the graph engine with MULTITHREADED_ONLY —
    must agree on racy locations."""

    def locations_agree(self, trace):
        vc = set(detect_races_vc(trace).racy_locations())
        graph = {r.location for r in detect_races(trace, config=MULTITHREADED_ONLY).races}
        assert vc == graph, (vc, graph)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_apps(self, seed):
        from tests.test_property import run_random_app

        self.locations_agree(run_random_app(seed).build_trace())

    @pytest.mark.parametrize("name", ["dictionary", "browser", "notes"])
    def test_demo_apps(self, name):
        from repro.apps.registry import DEMO_APPS

        app = DEMO_APPS[name]
        system = app.build(seed=3)
        system.run_to_quiescence()
        for event in list(system.enabled_events()):
            if event.kind == "click":
                system.fire(event)
                system.run_to_quiescence()
        self.locations_agree(system.finish())

    def test_music_player(self):
        from repro.apps.music_player import run_scenario

        for back in (False, True):
            _, trace = run_scenario(press_back=back, seed=8)
            self.locations_agree(trace)
