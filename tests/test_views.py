"""Tests for widgets, enablement and the screen model."""

import pytest

from repro.android import Activity, AndroidSystem, Ctx, UIEvent
from repro.android.views import Button, TextField
from repro.core.operations import OpKind


class WidgetHost(Activity):
    clicks = []

    def on_create(self, ctx: Ctx) -> None:
        self.register_button(
            ctx,
            "multi",
            on_click=lambda c: type(self).clicks.append("click"),
            on_long_click=lambda c: type(self).clicks.append("long"),
        )
        self.register_button(
            ctx, "hidden", on_click=lambda c: None, enabled=False
        )
        self.register_text_field(
            ctx, "email", on_text=lambda c, text: type(self).clicks.append(text),
            input_format="email",
        )


def booted_system():
    system = AndroidSystem(seed=0)
    system.launch(WidgetHost)
    system.run_to_quiescence()
    return system


class TestEnablement:
    def test_enabled_events_listed(self):
        system = booted_system()
        events = {e.describe() for e in system.enabled_events()}
        assert "click:multi" in events
        assert "long-click:multi" in events
        assert any(e.startswith("text:email=") for e in events)
        assert "back" in events and "rotate" in events
        assert not any("hidden" in e for e in events)

    def test_enable_ops_logged_per_event_kind(self):
        system = booted_system()
        enables = [op.task for op in system.env.ops if op.kind is OpKind.ENABLE]
        assert any(e.startswith("click:multi@") for e in enables)
        assert any(e.startswith("long-click:multi@") for e in enables)
        assert not any("hidden" in e for e in enables)

    def test_silent_enable_skips_logging_but_enables(self):
        system = booted_system()
        activity = system.screen.foreground
        before = len([op for op in system.env.ops if op.kind is OpKind.ENABLE])
        activity.find_view("hidden").set_enabled(system.env.main_ctx, True, silent=True)
        after = len([op for op in system.env.ops if op.kind is OpKind.ENABLE])
        assert before == after
        assert any(
            e.describe() == "click:hidden" for e in system.enabled_events()
        )

    def test_reenable_bumps_generation(self):
        system = booted_system()
        activity = system.screen.foreground
        widget = activity.find_view("multi")
        first = widget.enable_name_for("click")
        widget.set_enabled(system.env.main_ctx, False)
        widget.set_enabled(system.env.main_ctx, True)
        second = widget.enable_name_for("click")
        assert first != second and second.endswith("!2")


class TestDispatch:
    def test_click_and_long_click_routed(self):
        WidgetHost.clicks = []
        system = booted_system()
        system.fire(UIEvent("click", "multi"))
        system.run_to_quiescence()
        system.fire(UIEvent("long-click", "multi"))
        system.run_to_quiescence()
        assert WidgetHost.clicks == ["click", "long"]

    def test_text_event_carries_payload(self):
        WidgetHost.clicks = []
        system = booted_system()
        system.fire(UIEvent("text", "email", "[email protected]"))
        system.run_to_quiescence()
        assert WidgetHost.clicks == ["[email protected]"]

    def test_dispatch_post_tagged_with_enable_name(self):
        system = booted_system()
        system.fire(UIEvent("click", "multi"))
        system.run_to_quiescence()
        posts = [op for op in system.env.ops if op.kind is OpKind.POST and op.event]
        assert any(op.event.startswith("click:multi@") for op in posts)

    def test_firing_disabled_event_rejected(self):
        system = booted_system()
        with pytest.raises(KeyError):
            system.fire(UIEvent("click", "nonexistent"))

    def test_no_handler_rejected(self):
        system = booted_system()
        with pytest.raises(LookupError):
            system.fire(UIEvent("long-click", "hidden"))


class TestWidgetTypes:
    def test_text_field_formats(self):
        system = AndroidSystem(seed=0)

        class Host(Activity):
            def on_create(self, ctx):
                self.register_text_field(ctx, "num", on_text=lambda c, t: None, input_format="number")

        system.launch(Host)
        system.run_to_quiescence()
        events = [e for e in system.enabled_events() if e.kind == "text"]
        assert [e.payload for e in events] == ["42"]

    def test_unknown_format_rejected(self):
        system = AndroidSystem(seed=0)

        class Host(Activity):
            def on_create(self, ctx):
                self.register_text_field(ctx, "x", on_text=lambda c, t: None, input_format="martian")

        system.launch(Host)
        from repro.android.errors import AppCrashError

        with pytest.raises(AppCrashError):
            system.run_to_quiescence()

    def test_unsupported_event_kind_rejected(self):
        button = Button.__new__(Button)
        button.activity = None
        button.widget_id = "b"
        button.enabled = False
        button._handlers = {}
        button._enable_names = {}
        button._enable_generation = 0
        with pytest.raises(ValueError):
            button.set_handler("text", lambda c: None)

    def test_no_foreground_no_events(self):
        system = AndroidSystem(seed=0)
        system.boot()
        assert system.enabled_events() == []
        with pytest.raises(LookupError):
            system.screen.widget("any")
