#!/usr/bin/env python
"""Docs-check: keep the documented CLI examples runnable.

Extracts every ```bash fenced block from ``README.md`` and ``docs/*.md``
and executes each ``droidracer ...`` line in it (substituting the
installed entry point with ``<python> -m repro.cli`` so the check needs
no installation step).  Lines that do not start with ``droidracer`` —
``pip install``, ``pytest``, comments — are ignored, as are lines
containing ``<...>`` placeholders or an explicit ``# docs-check: skip``
marker.

Each document gets its own scratch working directory and its blocks run
in file order, so examples may build on earlier examples *within* one
document (``run --save-trace x.jsonl`` then ``analyze x.jsonl``) but
never across documents — every file stays independently reproducible.

Finally the check asserts *coverage*: every CLI subcommand must appear
in at least one executed example, so a new subcommand without a
documented, working invocation fails CI.

Usage:

    PYTHONPATH=src python tools/docs_check.py            # run everything
    PYTHONPATH=src python tools/docs_check.py --list     # show the commands
"""

from __future__ import annotations

import re
import shlex
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Documents scanned, in order.
DOCUMENTS = ["README.md"] + sorted(
    str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")
)

#: Every subcommand must be exercised by at least one documented example.
REQUIRED_COVERAGE = [
    "table2",
    "table3",
    "performance",
    "run",
    "demo",
    "explore",
    "analyze",
    "corpus ingest",
    "corpus analyze",
    "corpus report",
    "serve",
    "obs history",
    "obs compare",
    "obs gate",
    "obs dashboard",
    "obs suspicion",
    "obs top",
]

FENCE_RE = re.compile(r"^```bash\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
PLACEHOLDER_RE = re.compile(r"<[^>]*>")
SKIP_MARKER = "# docs-check: skip"


def extract_commands(markdown: str):
    """``droidracer ...`` lines from every ```bash block, in order."""
    commands = []
    for match in FENCE_RE.finditer(markdown):
        for line in match.group(1).splitlines():
            line = line.strip()
            if not line.startswith("droidracer"):
                continue
            if SKIP_MARKER in line:
                continue
            line = line.split("#", 1)[0].rstrip()  # drop trailing comments
            if PLACEHOLDER_RE.search(line):
                continue
            commands.append(line)
    return commands


def run_command(command: str, cwd: Path) -> float:
    """Execute one documented line; returns its wall time, dies on failure."""
    rewritten = command.replace(
        "droidracer", "%s -m repro.cli" % shlex.quote(sys.executable), 1
    )
    start = time.perf_counter()
    proc = subprocess.run(
        rewritten,
        shell=True,
        cwd=str(cwd),
        capture_output=True,
        text=True,
        env=dict(PYTHONPATH=str(SRC), PATH="/usr/bin:/bin:/usr/local/bin"),
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(
            "docs-check FAILED (exit %d): %s\n--- stdout ---\n%s\n"
            "--- stderr ---\n%s\n" % (proc.returncode, command, proc.stdout, proc.stderr)
        )
        raise SystemExit(1)
    return elapsed


def main(argv) -> int:
    list_only = "--list" in argv
    per_doc = {}
    for rel in DOCUMENTS:
        path = REPO / rel
        per_doc[rel] = extract_commands(path.read_text(encoding="utf-8"))

    executed = []
    for rel, commands in per_doc.items():
        if not commands:
            continue
        print("== %s (%d commands)" % (rel, len(commands)))
        if list_only:
            for command in commands:
                print("   %s" % command)
            executed.extend(commands)
            continue
        with tempfile.TemporaryDirectory(prefix="docs-check-") as scratch:
            for command in commands:
                elapsed = run_command(command, Path(scratch))
                print("   ok %5.1fs  %s" % (elapsed, command))
                executed.append(command)

    missing = [
        sub
        for sub in REQUIRED_COVERAGE
        if not any(cmd.startswith("droidracer %s" % sub) for cmd in executed)
    ]
    if missing:
        sys.stderr.write(
            "docs-check FAILED: no documented example for: %s\n"
            % ", ".join(missing)
        )
        return 1
    print(
        "docs-check OK: %d documented commands%s, all %d subcommands covered"
        % (
            len(executed),
            " listed" if list_only else " executed",
            len(REQUIRED_COVERAGE),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
