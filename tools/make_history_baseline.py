#!/usr/bin/env python
"""Populate a run-history store with the canonical gate workload.

One script produces both sides of the CI regression gate
(``droidracer obs gate``, see docs/observability.md):

* the **committed baseline** — run it with no arguments and commit the
  result under ``benchmarks/results/history_baseline`` whenever
  detector output legitimately changes;
* the **current side** — CI runs it against a scratch directory
  (``python tools/make_history_baseline.py ci-history --trace``) and
  gates that store against the committed one.

Because both stores come from the same command list, their
``(trace_digest, config_digest)`` keys line up and every record is
actually checked; keys that appear on only one side are reported by the
gate as unchecked, never failed.

The workload is deterministic end to end: a fixed-seed synthetic app
run, three re-analyses of the saved trace (both reachability backends
plus an escalated ``--triage vc`` run, which must reproduce the plain
run's report digest), a DFS exploration followed by a guided one over
the same store (covering ``extra["suspicion"]`` and
``extra["exploration"]`` record shapes), the two closure benchmark
smoke sweeps, the triage benchmark smoke gate, and the exploration
benchmark smoke (the guided-vs-monkey floor, recorded as a
``bench.exploration`` run).

Usage:

    PYTHONPATH=src python tools/make_history_baseline.py [DIR] [--trace]

DIR defaults to ``benchmarks/results/history_baseline``; an existing
store there is replaced, not appended to.  ``--trace`` additionally
writes a Chrome trace next to the store (CI uploads it as a failure
artifact; the committed baseline does not carry one).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DEFAULT_DIR = REPO / "benchmarks" / "results" / "history_baseline"

sys.path.insert(0, str(SRC))

from repro.cli import main as cli_main  # noqa: E402
from repro.obs.history import INDEX_FILE, RUNS_FILE  # noqa: E402


def run_cli(argv):
    code = cli_main(argv)
    if code != 0:
        raise SystemExit("droidracer %s failed with exit %d" % (argv[0], code))


def run_bench(extra, history, script="bench_closure.py"):
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "benchmarks" / script),
            extra,
            "--history",
            history,
        ],
        cwd=str(REPO),
    )
    if proc.returncode != 0:
        raise SystemExit("%s %s failed" % (script, extra))


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    history = str(Path(args[0]).resolve()) if args else str(DEFAULT_DIR)
    with_trace = "--trace" in argv

    # Replace, never append: the store must hold exactly one workload.
    for name in (RUNS_FILE, INDEX_FILE):
        path = os.path.join(history, name)
        if os.path.exists(path):
            os.remove(path)

    with tempfile.TemporaryDirectory(prefix="history-baseline-") as scratch:
        trace_path = os.path.join(scratch, "music-player.jsonl")
        run_cli(
            [
                "run",
                "Music Player",
                "--scale",
                "0.1",
                "--save-trace",
                trace_path,
                "--history",
                history,
            ]
        )
        analyze = ["analyze", trace_path, "--history", history]
        if with_trace:
            analyze += ["--trace-out", os.path.join(history, "pipeline-trace.json")]
        run_cli(analyze)
        run_cli(
            ["analyze", trace_path, "--backend", "chains", "--history", history]
        )
        # Escalated-triage run: shares its (trace, config) key with the
        # plain analyze above (the triage knob is excluded from config
        # digests), so the gate enforces the byte-identical-reports
        # contract between baseline and CI stores.
        run_cli(
            ["analyze", trace_path, "--triage", "vc", "--history", history]
        )
    # Feedback-loop records: a DFS exploration seeds the store with
    # suspicion signal documents, then a guided run mines that same
    # store — together they pin the extra["suspicion"] and
    # extra["exploration"] record shapes the dashboard and obs suspicion
    # consume.
    run_cli(
        ["explore", "music-player", "--depth", "1", "--max-runs", "4",
         "--history", history]
    )
    run_cli(
        ["explore", "music-player", "--strategy", "guided", "--budget", "3",
         "--sequences", "2", "--history", history]
    )
    run_bench("--smoke", history)
    run_bench("--reachability-smoke", history)
    run_bench("--smoke", history, script="bench_triage.py")
    run_bench("--smoke", history, script="bench_exploration.py")

    print("history store written to %s" % history)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
