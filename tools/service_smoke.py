#!/usr/bin/env python
"""CI smoke for ``droidracer serve``: boot the real CLI entry point as a
subprocess on an ephemeral port and drive it over the socket.

Asserts, in order:

1. **Report identity** — every served report is byte-identical to the
   offline ``droidracer analyze --json`` output for the same trace,
   modulo exactly the volatile fields the regression gate ignores
   (``analysis_seconds``, ``closure.memory_bytes``, ``trace_name``).
2. **Backpressure** — under ``--queue-depth 1 --no-drain`` the second
   distinct upload is refused with ``429`` while its trace still lands
   in the corpus.
3. **Restart recovery** — after SIGKILLing that server, a fresh boot
   replays the journal: the parked job completes without re-upload,
   and previously completed keys stay terminal (nothing re-queued).

State lives under ``--dir`` (default ``ci-service/``); on success the
directory is removed, on failure it is left behind for CI to upload as
an artifact (journal, corpus, reports — everything needed post-mortem).

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import pathlib
import re
import shutil
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.apps.paper_traces import figure3_trace, figure4_trace  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def strip_volatile(text: str) -> str:
    text = re.sub(r'"analysis_seconds": [-0-9.e+]+', '"analysis_seconds": 0', text)
    text = re.sub(r'"memory_bytes": \d+', '"memory_bytes": 0', text)
    return re.sub(r'"trace_name": "[^"]*"', '"trace_name": ""', text)


def start_server(store: pathlib.Path, *extra_args: str) -> tuple:
    """Launch ``droidracer serve`` and wait for its listen line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", str(store), "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    deadline = time.monotonic() + 60
    banner = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = LISTEN_RE.search(line)
        if match:
            return proc, "http://%s:%s" % match.groups()
    proc.kill()
    raise SystemExit(
        "service did not report a listen address; output:\n%s" % "".join(banner)
    )


def stop_server(proc: subprocess.Popen, sig=signal.SIGTERM) -> None:
    proc.send_signal(sig)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=30)


def offline_analyze_json(trace_file: pathlib.Path) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze", str(trace_file), "--json"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    if proc.returncode != 0:
        raise SystemExit("offline analyze failed:\n%s" % proc.stderr)
    return proc.stdout


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit("service smoke FAILED: %s" % message)


def main(argv) -> int:
    workdir = pathlib.Path(argv[argv.index("--dir") + 1]) if "--dir" in argv else (
        pathlib.Path.cwd() / "ci-service"
    )
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    store = workdir / "corpus"

    traces = {"figure3": figure3_trace(), "figure4": figure4_trace()}
    files = {}
    for name, trace in traces.items():
        files[name] = workdir / ("%s.jsonl" % name)
        files[name].write_text(trace.to_jsonl())

    # -- phase 1: serve vs offline analyze, byte for byte --------------------
    proc, base_url = start_server(store, "--jobs", "1")
    try:
        client = ServiceClient(base_url)
        digests = {}
        for i, (name, trace) in enumerate(sorted(traces.items())):
            payload = client.upload(
                trace.to_jsonl(), name=str(files[name]), compress=bool(i % 2)
            )
            job = client.wait(payload["job"]["job_id"], timeout=120)
            check(job["state"] == "done", "%s job ended %s (%s)"
                  % (name, job["state"], job.get("error")))
            digests[name] = payload["trace_digest"]
            served = client.report_text(payload["trace_digest"])
            offline = offline_analyze_json(files[name])
            check(
                strip_volatile(served) == strip_volatile(offline),
                "%s: served report differs from droidracer analyze" % name,
            )
            print("smoke: %s served == offline (%d races)" % (name, job["race_count"]))
        done_jobs = {j["job_id"] for j in client.jobs(state="done")["jobs"]}
        client.close()
    finally:
        stop_server(proc)
    check(proc.returncode == 0, "server exited %s on SIGTERM" % proc.returncode)

    # -- phase 2: backpressure under a tiny bound ----------------------------
    proc, base_url = start_server(
        store, "--jobs", "0", "--queue-depth", "1", "--no-drain"
    )
    try:
        client = ServiceClient(base_url)
        # Distinct fresh traces (unknown to the cache) so both need jobs.
        from repro.apps.ladder import ladder_trace

        first = client.upload(ladder_trace(3, 2).to_jsonl(), name="bp-first")
        check(first["job"]["state"] == "queued", "first upload not queued")
        try:
            client.upload(ladder_trace(4, 2).to_jsonl(), name="bp-second")
            check(False, "second upload was not refused")
        except ServiceError as exc:
            check(exc.status == 429, "expected 429, got %d" % exc.status)
        check(
            len(client.corpus()["entries"]) == len(traces) + 2,
            "refused upload did not ingest its trace",
        )
        parked_job = first["job"]["job_id"]
        parked_digest = first["trace_digest"]
        print("smoke: 429 backpressure OK (queue_depth=1)")
        client.close()
    finally:
        stop_server(proc, signal.SIGKILL)  # simulate a crash mid-queue

    # -- phase 3: restart resumes the journal --------------------------------
    proc, base_url = start_server(store, "--jobs", "0")
    try:
        client = ServiceClient(base_url)
        job = client.wait(parked_job, timeout=120)
        check(job["state"] == "done", "parked job did not resume: %s" % job)
        client.report_text(parked_digest)  # the report materialized
        for job_id in done_jobs:
            check(
                client.job(job_id)["state"] == "done",
                "completed key %s lost its terminal state" % job_id,
            )
        counts = client.status()["queue"]
        check(counts["queued"] == 0, "jobs left queued after recovery: %s" % counts)
        print("smoke: restart resumed %d job(s), completed keys stayed done"
              % 1)
        client.close()
    finally:
        stop_server(proc)

    shutil.rmtree(workdir)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
