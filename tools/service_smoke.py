#!/usr/bin/env python
"""CI smoke for ``droidracer serve``: boot the real CLI entry point as a
subprocess on an ephemeral port and drive it over the socket.

Asserts, in order:

1. **Report identity** — every served report is byte-identical to the
   offline ``droidracer analyze --json`` output for the same trace,
   modulo exactly the volatile fields the regression gate ignores
   (``analysis_seconds``, ``closure.memory_bytes``,
   ``closure.peak_rss_bytes``, ``trace_name``).
2. **Live telemetry** — with the byte-identity bar already passed
   *under metrics and JSON logging enabled*, ``GET /metrics`` exposes
   the required series (request-latency histograms for the exercised
   routes, queue gauges, triage-rate counters) with sane, NaN-free
   values, and the JSON log carries request→job correlated events.
3. **Backpressure** — under ``--queue-depth 1 --no-drain`` the second
   distinct upload is refused with ``429`` while its trace still lands
   in the corpus.
4. **Restart recovery** — after SIGKILLing that server, a fresh boot
   replays the journal: the parked job completes without re-upload,
   and previously completed keys stay terminal (nothing re-queued).

State lives under ``--dir`` (default ``ci-service/``); on success the
directory is removed, on failure it is left behind for CI to upload as
an artifact (journal, corpus, reports — everything needed post-mortem).

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import math
import pathlib
import re
import shutil
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.apps.paper_traces import figure3_trace, figure4_trace  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def strip_volatile(text: str) -> str:
    text = re.sub(r'"analysis_seconds": [-0-9.e+]+', '"analysis_seconds": 0', text)
    text = re.sub(r'"memory_bytes": \d+', '"memory_bytes": 0', text)
    text = re.sub(r'"peak_rss_bytes": \d+', '"peak_rss_bytes": 0', text)
    return re.sub(r'"trace_name": "[^"]*"', '"trace_name": ""', text)


def start_server(store: pathlib.Path, *extra_args: str) -> tuple:
    """Launch ``droidracer serve`` and wait for its listen line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", str(store), "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    deadline = time.monotonic() + 60
    banner = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = LISTEN_RE.search(line)
        if match:
            return proc, "http://%s:%s" % match.groups()
    proc.kill()
    raise SystemExit(
        "service did not report a listen address; output:\n%s" % "".join(banner)
    )


def stop_server(proc: subprocess.Popen, sig=signal.SIGTERM) -> None:
    proc.send_signal(sig)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=30)


def offline_analyze_json(trace_file: pathlib.Path) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze", str(trace_file), "--json"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    if proc.returncode != 0:
        raise SystemExit("offline analyze failed:\n%s" % proc.stderr)
    return proc.stdout


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit("service smoke FAILED: %s" % message)


#: Series ``GET /metrics`` must expose after phase 1's uploads.  The
#: histogram lines pin the label sets for the routes the phase
#: exercised; the gauges/counters must exist (pre-registered at boot).
REQUIRED_METRICS = [
    'droidracer_http_request_seconds_bucket{method="POST",route="/v1/traces"',
    'droidracer_http_request_seconds_bucket{method="GET",route="/v1/reports/:digest"',
    'droidracer_http_requests_total{method="POST",route="/v1/traces",code="202"}',
    'droidracer_http_requests_total{method="GET",route="/v1/reports/:digest",code="200"}',
    "droidracer_job_wait_seconds_count",
    "droidracer_job_run_seconds_count",
    "droidracer_queue_depth",
    "droidracer_queue_oldest_age_seconds",
    "droidracer_pool_workers",
    "droidracer_service_jobs_completed_total",
    "droidracer_service_triage_filtered_total",
    "droidracer_service_triage_escalated_total",
    "droidracer_rss_bytes",
    'droidracer_span_seconds_bucket{span="service.request"',
]

VALUE_RE = re.compile(r"^\S+ ([-+0-9.eEaAnNifIF]+)$")


def check_metrics_text(text: str, jobs_done: int) -> None:
    """Required series present, every exposed value finite."""
    for needle in REQUIRED_METRICS:
        check(needle in text, "GET /metrics missing series %r" % needle)
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        match = VALUE_RE.match(line)
        check(match is not None, "unparseable exposition line %r" % line)
        value = float(match.group(1))
        check(not math.isnan(value), "NaN value in %r" % line)
        check(not math.isinf(value), "infinite value in %r" % line)
    completed = re.search(
        r"^droidracer_service_jobs_completed_total (\d+)", text, re.MULTILINE
    )
    check(
        completed is not None and int(completed.group(1)) == jobs_done,
        "jobs_completed_total != %d" % jobs_done,
    )
    run_count = re.search(
        r"^droidracer_job_run_seconds_count (\d+)", text, re.MULTILINE
    )
    check(
        run_count is not None and int(run_count.group(1)) == jobs_done,
        "job_run_seconds count != %d" % jobs_done,
    )


def check_log_correlation(log_path: pathlib.Path) -> None:
    """The JSON log joins requests to jobs via the minted request id."""
    check(log_path.exists(), "--log-json wrote no file")
    records = []
    for line in log_path.read_text().splitlines():
        try:
            records.append(json.loads(line))
        except ValueError:
            raise SystemExit("service smoke FAILED: non-JSON log line %r" % line)
    events = {record["event"] for record in records}
    for needed in ("service.start", "request.done", "job.submitted",
                   "job.start", "job.done", "service.stop"):
        check(needed in events, "log missing event %r" % needed)
    submitted = [r for r in records if r["event"] == "job.submitted"]
    done = {r["job_id"]: r for r in records if r["event"] == "job.done"}
    check(bool(submitted), "no job.submitted events logged")
    for record in submitted:
        check(record["request_id"].startswith("req-"),
              "job.submitted without a request id: %r" % record)
        finished = done.get(record["job_id"])
        check(finished is not None, "job %s never logged job.done" % record["job_id"])
        check(finished["request_id"] == record["request_id"],
              "request id lost between submit and done: %r" % finished)
        check("trace_digest" in finished, "job.done without trace_digest")


def main(argv) -> int:
    workdir = pathlib.Path(argv[argv.index("--dir") + 1]) if "--dir" in argv else (
        pathlib.Path.cwd() / "ci-service"
    )
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    store = workdir / "corpus"

    traces = {"figure3": figure3_trace(), "figure4": figure4_trace()}
    files = {}
    for name, trace in traces.items():
        files[name] = workdir / ("%s.jsonl" % name)
        files[name].write_text(trace.to_jsonl())

    # -- phase 1: serve vs offline analyze, byte for byte --------------------
    # Metrics + JSON logging are ON for this phase: the byte-identity
    # bar must hold with the telemetry path fully enabled.
    log_path = workdir / "server-log.jsonl"
    proc, base_url = start_server(
        store, "--jobs", "1", "--log-json", str(log_path)
    )
    try:
        client = ServiceClient(base_url)
        digests = {}
        for i, (name, trace) in enumerate(sorted(traces.items())):
            payload = client.upload(
                trace.to_jsonl(), name=str(files[name]), compress=bool(i % 2)
            )
            job = client.wait(payload["job"]["job_id"], timeout=120)
            check(job["state"] == "done", "%s job ended %s (%s)"
                  % (name, job["state"], job.get("error")))
            digests[name] = payload["trace_digest"]
            served = client.report_text(payload["trace_digest"])
            offline = offline_analyze_json(files[name])
            check(
                strip_volatile(served) == strip_volatile(offline),
                "%s: served report differs from droidracer analyze" % name,
            )
            print("smoke: %s served == offline (%d races)" % (name, job["race_count"]))
        done_jobs = {j["job_id"] for j in client.jobs(state="done")["jobs"]}
        check_metrics_text(client.metrics_text(), jobs_done=len(traces))
        doc = client.metrics_json()
        agg = next(
            fam for fam in doc["families"]
            if fam["name"] == "droidracer_http_request_seconds"
        )["aggregate"]
        check(0.0 <= agg["p50"] <= agg["p95"] <= agg["p99"],
              "latency quantiles not monotone: %s" % agg)
        print("smoke: /metrics OK (%d required series, request p95 %.1fms)"
              % (len(REQUIRED_METRICS), agg["p95"] * 1e3))
        client.close()
    finally:
        stop_server(proc)
    check(proc.returncode == 0, "server exited %s on SIGTERM" % proc.returncode)
    check_log_correlation(log_path)
    print("smoke: JSON log correlates requests to jobs")

    # -- phase 2: backpressure under a tiny bound ----------------------------
    proc, base_url = start_server(
        store, "--jobs", "0", "--queue-depth", "1", "--no-drain"
    )
    try:
        client = ServiceClient(base_url)
        # Distinct fresh traces (unknown to the cache) so both need jobs.
        from repro.apps.ladder import ladder_trace

        first = client.upload(ladder_trace(3, 2).to_jsonl(), name="bp-first")
        check(first["job"]["state"] == "queued", "first upload not queued")
        try:
            client.upload(ladder_trace(4, 2).to_jsonl(), name="bp-second")
            check(False, "second upload was not refused")
        except ServiceError as exc:
            check(exc.status == 429, "expected 429, got %d" % exc.status)
        check(
            len(client.corpus()["entries"]) == len(traces) + 2,
            "refused upload did not ingest its trace",
        )
        parked_job = first["job"]["job_id"]
        parked_digest = first["trace_digest"]
        print("smoke: 429 backpressure OK (queue_depth=1)")
        client.close()
    finally:
        stop_server(proc, signal.SIGKILL)  # simulate a crash mid-queue

    # -- phase 3: restart resumes the journal --------------------------------
    proc, base_url = start_server(store, "--jobs", "0")
    try:
        client = ServiceClient(base_url)
        job = client.wait(parked_job, timeout=120)
        check(job["state"] == "done", "parked job did not resume: %s" % job)
        client.report_text(parked_digest)  # the report materialized
        for job_id in done_jobs:
            check(
                client.job(job_id)["state"] == "done",
                "completed key %s lost its terminal state" % job_id,
            )
        counts = client.status()["queue"]
        check(counts["queued"] == 0, "jobs left queued after recovery: %s" % counts)
        print("smoke: restart resumed %d job(s), completed keys stayed done"
              % 1)
        client.close()
    finally:
        stop_server(proc)

    shutil.rmtree(workdir)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
